//! The cycle-driven simulation engine.

use std::collections::VecDeque;

use noc_tdma::TdmaSpec;
use noc_topology::units::Bandwidth;
use noc_topology::LinkId;
use noc_usecase::spec::{CoreId, SocSpec, UseCaseId};
use noc_usecase::UseCaseGroups;
use nocmap::MappingSolution;

use crate::report::{FlowStats, SimReport};

/// Simulation window and checking knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of NoC clock cycles to simulate.
    pub cycles: u64,
    /// Extra latency slack (in cycles) tolerated on top of each
    /// connection's analytical worst case before counting a violation,
    /// covering source-queueing at start-up. One slot-table period is the
    /// natural choice and the default.
    pub queueing_slack_tables: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 8192,
            queueing_slack_tables: 1,
        }
    }
}

/// One GT connection to simulate: a configured route plus the rate its
/// source injects at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Flow identity, reported in [`SimReport::flows`].
    pub key: (CoreId, CoreId),
    /// Links from source NI to destination NI.
    pub path: Vec<LinkId>,
    /// Reserved base slots.
    pub base_slots: Vec<usize>,
    /// Injection rate of the traffic source.
    pub inject_bandwidth: Bandwidth,
    /// Analytical worst-case latency bound in cycles (checked against
    /// observed word latencies), if any.
    pub latency_bound_cycles: Option<u64>,
}

/// Simulates an arbitrary set of connections against `spec`'s slot
/// timing. This is the core engine; [`simulate_group`] and
/// [`simulate_use_case`] build the connection list from a mapping
/// solution.
///
/// # Panics
///
/// Panics if a connection has an empty path or a base slot out of range.
pub fn simulate_connections(
    spec: &TdmaSpec,
    connections: &[Connection],
    config: &SimConfig,
) -> SimReport {
    let slots = spec.slots();
    let word_bytes = u64::from(spec.width().bytes());
    let freq_hz = spec.frequency().as_hz();
    let slack = u64::from(config.queueing_slack_tables) * slots as u64;

    // Per-connection state.
    struct ConnState {
        in_slot: Vec<bool>,   // base-slot membership table
        queue: VecDeque<u64>, // enqueue cycle per queued word
        credit: u64,          // byte·Hz accumulator
        stats: FlowStats,
        bound: Option<u64>,
    }
    let mut states: Vec<ConnState> = connections
        .iter()
        .map(|c| {
            assert!(
                !c.path.is_empty(),
                "connection {:?} has an empty path",
                c.key
            );
            let mut in_slot = vec![false; slots];
            for &s in &c.base_slots {
                assert!(s < slots, "base slot {s} out of range for {:?}", c.key);
                in_slot[s] = true;
            }
            ConnState {
                in_slot,
                queue: VecDeque::new(),
                credit: 0,
                stats: FlowStats::default(),
                bound: c.latency_bound_cycles,
            }
        })
        .collect();

    // Static claims table: (link, slot) -> connection index. The slot
    // pattern is periodic, so any contention shows up as two connections
    // claiming one (link, slot) cell.
    let max_link = connections
        .iter()
        .flat_map(|c| c.path.iter())
        .map(|l| l.index())
        .max()
        .unwrap_or(0);
    let mut claims: Vec<Vec<Option<usize>>> = vec![vec![None; slots]; max_link + 1];
    let mut contention_violations = 0u64;
    let mut latency_violations = 0u64;

    // Delivery ring buffer: arrivals[cycle % ring] = (conn, enqueue_cycle).
    let max_hops = connections.iter().map(|c| c.path.len()).max().unwrap_or(0);
    let ring = max_hops + 2;
    let mut arrivals: Vec<Vec<(usize, u64)>> = vec![Vec::new(); ring];

    for t in 0..config.cycles {
        // Deliveries first: words scheduled to arrive this cycle.
        let bucket = std::mem::take(&mut arrivals[(t as usize) % ring]);
        for (ci, enq) in bucket {
            let latency = t - enq;
            let st = &mut states[ci];
            st.stats.delivered_words += 1;
            st.stats.total_latency_cycles += latency;
            st.stats.max_latency_cycles = st.stats.max_latency_cycles.max(latency);
            if let Some(bound) = st.bound {
                if latency > bound + slack {
                    latency_violations += 1;
                }
            }
        }

        let slot = (t % slots as u64) as usize;
        for (ci, conn) in connections.iter().enumerate() {
            let st = &mut states[ci];
            // Traffic generation: accumulate bandwidth credit and enqueue
            // whole words.
            st.credit += conn.inject_bandwidth.as_bytes_per_sec();
            while st.credit >= word_bytes * freq_hz {
                st.credit -= word_bytes * freq_hz;
                st.queue.push_back(t);
                st.stats.injected_words += 1;
            }
            // Injection: one word if this cycle's slot is owned.
            if st.in_slot[slot] {
                if let Some(enq) = st.queue.pop_front() {
                    // Claim every (link, slot) cell of the pipeline and
                    // check for contention.
                    for (i, &l) in conn.path.iter().enumerate() {
                        let cell = &mut claims[l.index()][(slot + i) % slots];
                        match *cell {
                            None => *cell = Some(ci),
                            Some(owner) if owner == ci => {}
                            Some(_) => contention_violations += 1,
                        }
                    }
                    // Schedule delivery after the pipeline traversal.
                    let arrive = t + conn.path.len() as u64;
                    arrivals[(arrive as usize) % ring].push((ci, enq));
                }
            }
        }
    }

    let mut flows = std::collections::BTreeMap::new();
    for (ci, conn) in connections.iter().enumerate() {
        let st = &mut states[ci];
        st.stats.backlog_words = st.stats.injected_words - st.stats.delivered_words;
        flows.insert(conn.key, st.stats.clone());
    }
    SimReport {
        cycles: config.cycles,
        slots_per_table: slots,
        flows,
        contention_violations,
        latency_violations,
    }
}

fn bound_cycles(spec: &TdmaSpec, route: &nocmap::Route) -> u64 {
    spec.worst_case_latency_cycles(&route.base_slots, route.hops())
}

/// Simulates one group's full NoC configuration, each connection
/// injecting at its **provisioned** bandwidth (the group's worst same-pair
/// demand) — the heaviest load the configuration must sustain.
///
/// # Panics
///
/// Panics if `group` is out of range for the solution.
pub fn simulate_group(solution: &MappingSolution, group: usize, config: &SimConfig) -> SimReport {
    let spec = solution.spec();
    let conns: Vec<Connection> = solution
        .group_config(group)
        .iter()
        .map(|(&key, route)| Connection {
            key,
            path: route.path.clone(),
            base_slots: route.base_slots.clone(),
            inject_bandwidth: route.bandwidth,
            latency_bound_cycles: Some(bound_cycles(&spec, route)),
        })
        .collect();
    simulate_connections(&spec, &conns, config)
}

/// Simulates one **use-case** running on its group's configuration: each
/// flow injects at the use-case's own bandwidth (which may be below the
/// provisioned maximum when a group-mate demanded more).
///
/// # Panics
///
/// Panics if the use-case index is out of range, or if the solution lacks
/// a route for one of its flows (i.e. the solution does not belong to
/// this spec — run [`MappingSolution::verify`] first).
pub fn simulate_use_case(
    solution: &MappingSolution,
    soc: &SocSpec,
    groups: &UseCaseGroups,
    use_case: usize,
    config: &SimConfig,
) -> SimReport {
    let uc_id = UseCaseId::new(use_case as u32);
    let spec = solution.spec();
    let g = groups.group_of(uc_id);
    let conns: Vec<Connection> = soc
        .use_case(uc_id)
        .flows()
        .iter()
        .map(|flow| {
            let route = solution
                .group_config(g)
                .route(flow.src(), flow.dst())
                .expect("solution must cover every flow of the spec");
            Connection {
                key: flow.endpoints(),
                path: route.path.clone(),
                base_slots: route.base_slots.clone(),
                inject_bandwidth: flow.bandwidth(),
                latency_bound_cycles: Some(bound_cycles(&spec, route)),
            }
        })
        .collect();
    simulate_connections(&spec, &conns, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_tdma::TdmaSpec;
    use noc_topology::units::{Frequency, Latency, LinkWidth};
    use noc_topology::MeshBuilder;
    use noc_usecase::spec::UseCaseBuilder;
    use nocmap::design::design_smallest_mesh;
    use nocmap::MapperOptions;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn spec8() -> TdmaSpec {
        TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32)
    }

    /// A hand-built 3-link path on a 1x2 mesh.
    fn hand_path() -> (TdmaSpec, Vec<LinkId>) {
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let ni0 = topo.nis()[0];
        let ni1 = topo.nis()[1];
        let s0 = topo.ni_switch(ni0).unwrap();
        let s1 = topo.ni_switch(ni1).unwrap();
        let path = vec![
            topo.link_between(ni0, s0).unwrap(),
            topo.link_between(s0, s1).unwrap(),
            topo.link_between(s1, ni1).unwrap(),
        ];
        (spec8(), path)
    }

    #[test]
    fn full_rate_connection_saturates_its_slots() {
        let (spec, path) = hand_path();
        // 2 of 8 slots at 2000 MB/s link = 500 MB/s; inject exactly that.
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0, 4],
            inject_bandwidth: Bandwidth::from_mbps(500),
            latency_bound_cycles: Some(spec.worst_case_latency_cycles(&[0, 4], 3)),
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        assert_eq!(report.contention_violations, 0);
        assert_eq!(report.latency_violations, 0);
        let stats = &report.flows[&(c(0), c(1))];
        // 500 MB/s at 500 MHz x 4B = 0.25 words/cycle over 8192 cycles.
        assert_eq!(stats.injected_words, 8192 / 4);
        assert!(report.all_flows_delivered());
        let bw = report
            .delivered_bandwidth((c(0), c(1)), 4, 500_000_000)
            .unwrap();
        assert!(
            bw >= Bandwidth::from_mbps(495),
            "delivered {bw} should be ~500 MB/s"
        );
    }

    #[test]
    fn latency_stays_within_analytical_bound() {
        let (spec, path) = hand_path();
        let bound = spec.worst_case_latency_cycles(&[0], 3); // 8 + 3
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::from_mbps(200), // below the 250 slot rate
            latency_bound_cycles: Some(bound),
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        assert_eq!(report.latency_violations, 0);
        let stats = &report.flows[&(c(0), c(1))];
        assert!(
            stats.max_latency_cycles <= bound + 8,
            "observed {} vs bound {bound} (+8 slack)",
            stats.max_latency_cycles
        );
    }

    #[test]
    fn overlapping_reservations_detected_as_contention() {
        let (spec, path) = hand_path();
        // Two connections deliberately share base slot 0 on one path —
        // an invalid configuration the simulator must flag.
        let mk = |key| Connection {
            key,
            path: path.clone(),
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::from_mbps(250),
            latency_bound_cycles: None,
        };
        let report = simulate_connections(
            &spec,
            &[mk((c(0), c(1))), mk((c(2), c(3)))],
            &SimConfig::default(),
        );
        assert!(report.contention_violations > 0);
    }

    #[test]
    fn disjoint_slots_no_contention() {
        let (spec, path) = hand_path();
        let mk = |key, slot| Connection {
            key,
            path: path.clone(),
            base_slots: vec![slot],
            inject_bandwidth: Bandwidth::from_mbps(250),
            latency_bound_cycles: None,
        };
        let report = simulate_connections(
            &spec,
            &[mk((c(0), c(1)), 0), mk((c(2), c(3)), 5)],
            &SimConfig::default(),
        );
        assert_eq!(report.contention_violations, 0);
        assert!(report.all_flows_delivered());
    }

    #[test]
    fn zero_bandwidth_source_stays_idle() {
        let (spec, path) = hand_path();
        let conn = Connection {
            key: (c(0), c(1)),
            path,
            base_slots: vec![0],
            inject_bandwidth: Bandwidth::ZERO,
            latency_bound_cycles: None,
        };
        let report = simulate_connections(&spec, &[conn], &SimConfig::default());
        let stats = &report.flows[&(c(0), c(1))];
        assert_eq!(stats.injected_words, 0);
        assert_eq!(stats.delivered_words, 0);
        assert_eq!(stats.delivery_ratio(), 1.0);
    }

    #[test]
    fn end_to_end_mapped_solution_simulates_clean() {
        let mut soc = SocSpec::new("sim-e2e");
        soc.add_use_case(
            UseCaseBuilder::new("u0")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(400),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(250), Latency::from_us(1))
                .unwrap()
                .flow(
                    c(2),
                    c(3),
                    Bandwidth::from_mbps(125),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("u1")
                .flow(
                    c(0),
                    c(1),
                    Bandwidth::from_mbps(100),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .flow(
                    c(3),
                    c(0),
                    Bandwidth::from_mbps(600),
                    Latency::UNCONSTRAINED,
                )
                .unwrap()
                .build(),
        );
        let groups = UseCaseGroups::singletons(2);
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            64,
        )
        .unwrap();
        sol.verify(&soc, &groups).unwrap();
        for g in 0..2 {
            let report = simulate_group(&sol, g, &SimConfig::default());
            assert_eq!(report.contention_violations, 0, "group {g} contended");
            assert_eq!(report.latency_violations, 0, "group {g} late");
            assert!(report.all_flows_delivered(), "group {g} dropped words");
        }
        for uc in 0..2 {
            let report = simulate_use_case(&sol, &soc, &groups, uc, &SimConfig::default());
            assert_eq!(report.contention_violations, 0);
            assert_eq!(report.latency_violations, 0);
            assert!(report.all_flows_delivered());
        }
    }
}
