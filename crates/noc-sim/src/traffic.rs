//! Traffic-source models for the cycle-driven simulator.
//!
//! The paper's verification phase drives every connection with a smooth
//! constant-rate source — adequate for the streaming loads of its SoC
//! designs, but not for the architect's follow-up question of how much
//! *irregular* traffic the leftover (best-effort) capacity absorbs. In
//! Æthereal's two-class model (Rijpkema et al., DATE 2003, the paper's
//! \[9\]) burstiness, not average rate, decides queueing behaviour.
//!
//! [`TrafficModel`] describes *when* a source hands words to its network
//! interface; the configured [`Bandwidth`] of the carrying flow always
//! fixes the **average** rate, and the model shapes its timing:
//!
//! * [`TrafficModel::Constant`] — the smooth credit accumulator the
//!   engine always used; bit-for-bit identical to the pre-model
//!   behaviour and the default everywhere.
//! * [`TrafficModel::OnOff`] — deterministic periodic bursts: the source
//!   emits at `period / on` times the average rate during the first `on`
//!   cycles of every `period`, and is silent otherwise.
//! * [`TrafficModel::RandomBursts`] — a seeded two-state Markov source
//!   (an MMPP-style on/off chain with geometric sojourn times). Fully
//!   deterministic given `(seed, flow index)`; see [`flow_seed`].
//! * [`TrafficModel::Trace`] — replay of an explicit, sorted list of
//!   injection cycles (one word per entry), ignoring the bandwidth.
//!
//! All credit arithmetic is integer (`bytes/s` against a
//! `word-bytes × Hz × denominator` threshold), so every model is exact:
//! no float accumulation, no thread-count sensitivity, byte-identical
//! reports on every host — the same determinism contract `noc-par`
//! established for the mapper.
//!
//! # Example
//!
//! ```
//! use noc_sim::TrafficModel;
//! use noc_topology::units::Bandwidth;
//!
//! // 500 MB/s at 500 MHz with 4-byte words is one word every 4 cycles.
//! let mut smooth = TrafficModel::Constant.source(
//!     Bandwidth::from_mbps(500), 4, 500_000_000, 0);
//! let per_cycle: Vec<u64> = (0..8).map(|t| smooth.words_at(t)).collect();
//! assert_eq!(per_cycle, vec![0, 0, 0, 1, 0, 0, 0, 1]);
//!
//! // The same average rate compressed into the first quarter of every
//! // 8-cycle period: a burst of two back-to-back words, then silence.
//! let bursty = TrafficModel::OnOff { period: 8, on: 2, phase: 0 };
//! let mut src = bursty.source(Bandwidth::from_mbps(500), 4, 500_000_000, 0);
//! let per_cycle: Vec<u64> = (0..8).map(|t| src.words_at(t)).collect();
//! assert_eq!(per_cycle, vec![1, 1, 0, 0, 0, 0, 0, 0]);
//! assert_eq!(bursty.peak_bandwidth(Bandwidth::from_mbps(500)),
//!            Bandwidth::from_mbps(2000));
//! ```

use noc_topology::units::Bandwidth;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-flow RNG seed under base seed `seed`: flow 0 keeps the base
/// seed, later flows stride by the 64-bit golden ratio — the same
/// derivation rule as `nocmap::anneal::chain_seed`, so seeded sources
/// obey the workspace-wide `(seed, index)` determinism contract.
///
/// ```
/// use noc_sim::traffic::flow_seed;
///
/// assert_eq!(flow_seed(2006, 0), 2006);
/// assert_ne!(flow_seed(2006, 1), flow_seed(2006, 2));
/// ```
pub fn flow_seed(seed: u64, flow: usize) -> u64 {
    seed.wrapping_add((flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// When a traffic source hands words to its network interface.
///
/// The flow's configured [`Bandwidth`] always fixes the long-run
/// **average** rate (except for [`TrafficModel::Trace`], which replays
/// explicit cycles); the model shapes the timing. `Constant` is the
/// default and reproduces the engine's original smooth sources
/// bit-for-bit.
///
/// ```
/// use noc_sim::TrafficModel;
///
/// assert_eq!(TrafficModel::default(), TrafficModel::Constant);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TrafficModel {
    /// Smooth credit-accumulator source: one word every
    /// `word_bytes × clock / bandwidth` cycles, the paper's streaming
    /// load and the engine's original behaviour.
    #[default]
    Constant,
    /// Deterministic periodic bursts: active during cycles `t` with
    /// `(t + phase) mod period < on`, emitting at `period / on` times
    /// the average rate, silent otherwise. Credit carries across
    /// periods, so the long-run average is exactly the configured
    /// bandwidth.
    OnOff {
        /// Burst period in cycles (> 0).
        period: u64,
        /// Active cycles at the start of each period (`1..=period`).
        on: u64,
        /// Offset added to the cycle counter before the period test,
        /// for staggering several sources.
        phase: u64,
    },
    /// Seeded random bursts: a two-state Markov chain (on ↔ off) with
    /// geometric sojourn times of the given means, emitting at
    /// `(mean_on + mean_off) / mean_on` times the average rate while
    /// on — an MMPP-style source. The long-run average approaches the
    /// configured bandwidth as the window grows.
    ///
    /// The chain is driven by a [`SmallRng`] seeded with
    /// [`flow_seed`]`(seed, flow_index)`, so a scenario is a pure
    /// function of `(seed, flow order)` — byte-identical reports at any
    /// thread count.
    RandomBursts {
        /// Mean burst length in cycles (≥ 1).
        mean_on: u64,
        /// Mean gap between bursts in cycles (≥ 1).
        mean_off: u64,
        /// Base seed; the flow index is mixed in via [`flow_seed`].
        seed: u64,
    },
    /// Replay of an explicit injection schedule: one word per listed
    /// cycle, in order (entries must be non-decreasing; repeats mean
    /// several words in one cycle). The flow's bandwidth is ignored.
    Trace(Vec<u64>),
}

impl TrafficModel {
    /// The burst-peak injection rate this model reaches for a flow whose
    /// average rate is `average`: `Constant` and `Trace` return the
    /// average unchanged, `OnOff` scales by `period / on`, and
    /// `RandomBursts` by `(mean_on + mean_off) / mean_on`.
    ///
    /// ```
    /// use noc_sim::TrafficModel;
    /// use noc_topology::units::Bandwidth;
    ///
    /// let avg = Bandwidth::from_mbps(100);
    /// let m = TrafficModel::RandomBursts { mean_on: 8, mean_off: 24, seed: 1 };
    /// assert_eq!(m.peak_bandwidth(avg), Bandwidth::from_mbps(400));
    /// ```
    pub fn peak_bandwidth(&self, average: Bandwidth) -> Bandwidth {
        let (num, den) = match self {
            TrafficModel::Constant | TrafficModel::Trace(_) => (1, 1),
            TrafficModel::OnOff { period, on, .. } => (*period, *on),
            TrafficModel::RandomBursts {
                mean_on, mean_off, ..
            } => (mean_on + mean_off, *mean_on),
        };
        Bandwidth::from_bytes_per_sec(
            (average.as_bytes_per_sec() as u128 * num as u128 / den.max(1) as u128) as u64,
        )
    }

    /// `true` for models whose schedule depends on a seed
    /// ([`TrafficModel::RandomBursts`]); deterministic replays must
    /// carry the seed alongside the scenario.
    pub fn is_seeded(&self) -> bool {
        matches!(self, TrafficModel::RandomBursts { .. })
    }

    /// Builds the running source for one flow: `bandwidth` is the
    /// average rate, `word_bytes`/`clock_hz` the link word size and NoC
    /// clock, and `flow_index` the flow's position in its connection
    /// list (it salts the seed of [`TrafficModel::RandomBursts`] via
    /// [`flow_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if the model is degenerate: `OnOff` with `period == 0` or
    /// `on` outside `1..=period`, `RandomBursts` with a zero mean, or a
    /// `Trace` whose cycles are not sorted.
    ///
    /// ```
    /// use noc_sim::TrafficModel;
    /// use noc_topology::units::Bandwidth;
    ///
    /// // A trace replays exactly its listed cycles, bandwidth ignored.
    /// let model = TrafficModel::Trace(vec![0, 0, 5]);
    /// let mut src = model.source(Bandwidth::ZERO, 4, 500_000_000, 0);
    /// assert_eq!(src.words_at(0), 2);
    /// assert_eq!(src.words_at(1), 0);
    /// assert_eq!(src.words_at(5), 1);
    /// ```
    pub fn source(
        &self,
        bandwidth: Bandwidth,
        word_bytes: u32,
        clock_hz: u64,
        flow_index: usize,
    ) -> TrafficSource {
        let word = u128::from(word_bytes) * u128::from(clock_hz);
        let rate = u128::from(bandwidth.as_bytes_per_sec());
        let (kind, gain, threshold) = match self {
            TrafficModel::Constant => (Kind::Smooth, rate, word),
            TrafficModel::OnOff { period, on, phase } => {
                assert!(*period > 0, "OnOff period must be positive");
                assert!(
                    *on >= 1 && on <= period,
                    "OnOff on-window {on} outside 1..={period}"
                );
                (
                    Kind::OnOff {
                        period: *period,
                        on: *on,
                        phase: *phase,
                    },
                    rate * u128::from(*period),
                    word * u128::from(*on),
                )
            }
            TrafficModel::RandomBursts {
                mean_on,
                mean_off,
                seed,
            } => {
                assert!(*mean_on >= 1, "RandomBursts mean_on must be >= 1");
                assert!(*mean_off >= 1, "RandomBursts mean_off must be >= 1");
                let mut rng = SmallRng::seed_from_u64(flow_seed(*seed, flow_index));
                // Start in the stationary distribution so short windows
                // are not biased toward one state.
                let on = rng.gen_range(0..mean_on + mean_off) < *mean_on;
                (
                    Kind::Random {
                        rng,
                        on,
                        mean_on: *mean_on,
                        mean_off: *mean_off,
                    },
                    rate * u128::from(mean_on + mean_off),
                    word * u128::from(*mean_on),
                )
            }
            TrafficModel::Trace(cycles) => {
                assert!(
                    cycles.windows(2).all(|w| w[0] <= w[1]),
                    "Trace cycles must be sorted non-decreasing"
                );
                (
                    Kind::Trace {
                        cycles: cycles.clone(),
                        next: 0,
                    },
                    0,
                    word,
                )
            }
        };
        TrafficSource {
            kind,
            credit: 0,
            gain,
            threshold,
        }
    }
}

enum Kind {
    Smooth,
    OnOff {
        period: u64,
        on: u64,
        phase: u64,
    },
    Random {
        rng: SmallRng,
        on: bool,
        mean_on: u64,
        mean_off: u64,
    },
    Trace {
        cycles: Vec<u64>,
        next: usize,
    },
}

/// A running traffic source produced by [`TrafficModel::source`]:
/// integer credit state plus the model's schedule.
///
/// The engine calls [`TrafficSource::words_at`] exactly once per cycle,
/// in cycle order starting at 0; seeded models advance their RNG once
/// per call, so that calling convention is part of the determinism
/// contract.
pub struct TrafficSource {
    kind: Kind,
    credit: u128,
    /// Credit (bytes/s, scaled by the model's denominator) earned per
    /// active cycle.
    gain: u128,
    /// Credit one link word costs, at the same scale.
    threshold: u128,
}

impl TrafficSource {
    /// Number of whole words the source hands to its NI in `cycle`.
    /// Must be called once per simulated cycle, in increasing order.
    pub fn words_at(&mut self, cycle: u64) -> u64 {
        let active = match &mut self.kind {
            Kind::Smooth => true,
            Kind::OnOff { period, on, phase } => (cycle.wrapping_add(*phase)) % *period < *on,
            Kind::Random {
                rng,
                on,
                mean_on,
                mean_off,
            } => {
                let now = *on;
                // One geometric-exit draw per cycle keeps the RNG stream
                // aligned with the cycle counter regardless of state.
                let exit = if now {
                    rng.gen_range(0..*mean_on) == 0
                } else {
                    rng.gen_range(0..*mean_off) == 0
                };
                if exit {
                    *on = !now;
                }
                now
            }
            Kind::Trace { cycles, next } => {
                let mut words = 0;
                while *next < cycles.len() && cycles[*next] == cycle {
                    *next += 1;
                    words += 1;
                }
                return words;
            }
        };
        if active {
            self.credit += self.gain;
        }
        let words = self.credit / self.threshold;
        self.credit -= words * self.threshold;
        words as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORD: u32 = 4;
    const CLOCK: u64 = 500_000_000;

    fn total(model: &TrafficModel, mbps: u64, cycles: u64) -> u64 {
        let mut src = model.source(Bandwidth::from_mbps(mbps), WORD, CLOCK, 0);
        (0..cycles).map(|t| src.words_at(t)).sum()
    }

    #[test]
    fn constant_matches_credit_accumulator() {
        // 500 MB/s over 8192 cycles at 2000 MB/s word rate = 2048 words,
        // the exact count of the original engine arithmetic.
        assert_eq!(total(&TrafficModel::Constant, 500, 8192), 2048);
        assert_eq!(total(&TrafficModel::Constant, 0, 8192), 0);
    }

    #[test]
    fn onoff_preserves_average_over_whole_periods() {
        let model = TrafficModel::OnOff {
            period: 64,
            on: 8,
            phase: 0,
        };
        assert_eq!(
            total(&model, 500, 8192),
            total(&TrafficModel::Constant, 500, 8192)
        );
        // And the words really cluster in the on-window.
        let mut src = model.source(Bandwidth::from_mbps(500), WORD, CLOCK, 0);
        for t in 0..64 {
            let w = src.words_at(t);
            if t >= 8 {
                assert_eq!(w, 0, "off-cycle {t} injected");
            }
        }
    }

    #[test]
    fn onoff_phase_shifts_the_window() {
        let model = TrafficModel::OnOff {
            period: 8,
            on: 2,
            phase: 4,
        };
        let mut src = model.source(Bandwidth::from_mbps(500), WORD, CLOCK, 0);
        let per_cycle: Vec<u64> = (0..8).map(|t| src.words_at(t)).collect();
        // Active cycles satisfy (t + 4) % 8 < 2, i.e. t = 4, 5.
        assert_eq!(per_cycle, vec![0, 0, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn random_bursts_deterministic_per_flow_seed() {
        let model = TrafficModel::RandomBursts {
            mean_on: 8,
            mean_off: 24,
            seed: 7,
        };
        let run = |flow| {
            let mut src = model.source(Bandwidth::from_mbps(400), WORD, CLOCK, flow);
            (0..4096).map(|t| src.words_at(t)).collect::<Vec<u64>>()
        };
        assert_eq!(run(0), run(0), "same flow index must replay exactly");
        assert_ne!(run(0), run(1), "flows must not share one burst schedule");
    }

    #[test]
    fn random_bursts_average_approaches_configured_rate() {
        let model = TrafficModel::RandomBursts {
            mean_on: 16,
            mean_off: 48,
            seed: 2006,
        };
        let cycles = 1 << 16;
        let got = total(&model, 500, cycles);
        let want = total(&TrafficModel::Constant, 500, cycles);
        let ratio = got as f64 / want as f64;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "long-run average off: {got} vs {want}"
        );
    }

    #[test]
    fn trace_replays_exact_cycles() {
        let model = TrafficModel::Trace(vec![3, 3, 3, 10]);
        let mut src = model.source(Bandwidth::ZERO, WORD, CLOCK, 0);
        let counts: Vec<u64> = (0..12).map(|t| src.words_at(t)).collect();
        assert_eq!(counts.iter().sum::<u64>(), 4);
        assert_eq!(counts[3], 3);
        assert_eq!(counts[10], 1);
    }

    #[test]
    fn peak_bandwidth_scales_by_duty_cycle() {
        let avg = Bandwidth::from_mbps(250);
        assert_eq!(TrafficModel::Constant.peak_bandwidth(avg), avg);
        let onoff = TrafficModel::OnOff {
            period: 32,
            on: 4,
            phase: 0,
        };
        assert_eq!(onoff.peak_bandwidth(avg), Bandwidth::from_mbps(2000));
        assert!(!onoff.is_seeded());
        assert!(TrafficModel::RandomBursts {
            mean_on: 1,
            mean_off: 1,
            seed: 0
        }
        .is_seeded());
    }

    #[test]
    #[should_panic(expected = "on-window")]
    fn onoff_rejects_empty_window() {
        let _ = TrafficModel::OnOff {
            period: 8,
            on: 0,
            phase: 0,
        }
        .source(Bandwidth::from_mbps(1), WORD, CLOCK, 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn trace_rejects_unsorted_cycles() {
        let _ = TrafficModel::Trace(vec![5, 3]).source(Bandwidth::ZERO, WORD, CLOCK, 0);
    }
}
