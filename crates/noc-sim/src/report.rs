//! Simulation statistics.

use std::collections::BTreeMap;

use noc_topology::units::Bandwidth;
use noc_usecase::spec::CoreId;

/// Per-flow simulation outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Words handed to the source NI by the traffic generator.
    pub injected_words: u64,
    /// Words that reached the destination NI within the simulated window.
    pub delivered_words: u64,
    /// Largest observed source-queue-entry → delivery latency, in cycles.
    pub max_latency_cycles: u64,
    /// Sum of per-word latencies (for averaging), in cycles.
    pub total_latency_cycles: u64,
    /// Words still in flight or queued when the window closed.
    pub backlog_words: u64,
    /// Deepest outstanding backlog (injected but not yet delivered words)
    /// observed at any cycle of the window — the burst-absorption
    /// indicator for non-constant traffic models.
    pub peak_backlog_words: u64,
}

impl FlowStats {
    /// Mean per-word latency in cycles (0 when nothing was delivered).
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.delivered_words == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered_words as f64
        }
    }

    /// Fraction of injected words delivered within the window.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_words == 0 {
            1.0
        } else {
            self.delivered_words as f64 / self.injected_words as f64
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Slot-table size during the run.
    pub slots_per_table: usize,
    /// Per-flow statistics keyed by `(src, dst)` core pair.
    pub flows: BTreeMap<(CoreId, CoreId), FlowStats>,
    /// Number of cycles in which two connections tried to use one link —
    /// must be zero for any valid GT configuration.
    pub contention_violations: u64,
    /// Number of delivered words that exceeded their connection's
    /// analytical worst-case latency bound (plus the permitted queueing
    /// slack) — must be zero.
    pub latency_violations: u64,
}

impl SimReport {
    /// `true` when every flow delivered all words that had time to drain
    /// (words injected in the last `2 × S + hops` cycles may legitimately
    /// still be in flight, which `backlog_words` accounts for).
    pub fn all_flows_delivered(&self) -> bool {
        self.flows
            .values()
            .all(|s| s.delivered_words + s.backlog_words == s.injected_words)
    }

    /// Delivered bandwidth of one flow over the window, given the word
    /// size in bytes and the clock in Hz.
    pub fn delivered_bandwidth(
        &self,
        pair: (CoreId, CoreId),
        word_bytes: u32,
        clock_hz: u64,
    ) -> Option<Bandwidth> {
        let stats = self.flows.get(&pair)?;
        if self.cycles == 0 {
            return Some(Bandwidth::ZERO);
        }
        let bytes = stats.delivered_words as u128 * word_bytes as u128;
        let bps = bytes * clock_hz as u128 / self.cycles as u128;
        Some(Bandwidth::from_bytes_per_sec(bps as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_stats_ratios() {
        let s = FlowStats {
            injected_words: 10,
            delivered_words: 8,
            max_latency_cycles: 20,
            total_latency_cycles: 80,
            backlog_words: 2,
            peak_backlog_words: 4,
        };
        assert!((s.mean_latency_cycles() - 10.0).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        let empty = FlowStats::default();
        assert_eq!(empty.mean_latency_cycles(), 0.0);
        assert_eq!(empty.delivery_ratio(), 1.0);
    }

    #[test]
    fn delivered_bandwidth_math() {
        let mut flows = BTreeMap::new();
        let pair = (CoreId::new(0), CoreId::new(1));
        flows.insert(
            pair,
            FlowStats {
                injected_words: 100,
                delivered_words: 100,
                ..Default::default()
            },
        );
        let report = SimReport {
            cycles: 1000,
            slots_per_table: 16,
            flows,
            contention_violations: 0,
            latency_violations: 0,
        };
        // 100 words x 4 bytes over 1000 cycles at 500 MHz = 200 MB/s.
        let bw = report.delivered_bandwidth(pair, 4, 500_000_000).unwrap();
        assert_eq!(bw, Bandwidth::from_mbps(200));
        assert!(report
            .delivered_bandwidth((CoreId::new(9), CoreId::new(9)), 4, 1)
            .is_none());
        assert!(report.all_flows_delivered());
    }
}
