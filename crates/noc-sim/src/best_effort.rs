//! Best-effort (BE) traffic on top of a GT configuration.
//!
//! Æthereal offers two service classes (Rijpkema et al., DATE 2003, cited
//! as [9] by the paper): *guaranteed throughput* connections own TDMA
//! slots, while *best effort* packets are routed through whatever slots
//! are left, with router queueing and no guarantees. The mapping
//! methodology only reserves resources for GT flows; this module lets the
//! simulator answer the follow-up question an architect has: *how much BE
//! traffic still fits the leftover capacity, and at what latency?*
//!
//! Model: BE words are source-routed along a fixed path. A BE word may
//! traverse link `l` in cycle `t` only if slot `t mod S` of `l` is not
//! reserved by any GT connection (conservative: reserved-but-idle slots
//! are *not* stolen) and no other BE word crosses `l` that cycle
//! (per-link FIFO arbitration). Queues are unbounded; congestion shows up
//! as backlog and latency, not drops.

use std::collections::{BTreeMap, VecDeque};

use noc_tdma::{SlotMask, TdmaSpec};
use noc_topology::units::Bandwidth;
use noc_topology::LinkId;
use noc_usecase::spec::CoreId;

use crate::engine::Connection;
use crate::report::{FlowStats, SimReport};
use crate::traffic::TrafficModel;

/// A best-effort flow: a fixed path and an injection rate, no
/// reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestEffortFlow {
    /// Flow identity, reported in [`MixedReport::best_effort`].
    pub key: (CoreId, CoreId),
    /// Links from source NI to destination NI.
    pub path: Vec<LinkId>,
    /// Average injection rate of the traffic source.
    pub inject_bandwidth: Bandwidth,
    /// Timing of the source's word generation
    /// ([`TrafficModel::Constant`] reproduces the original smooth
    /// sources bit-for-bit). Seeded models salt their seed with the
    /// flow's index in the `best_effort` list passed to
    /// [`simulate_mixed`], offset by the GT connection count so a GT
    /// connection and a BE flow never share one burst schedule.
    pub traffic: TrafficModel,
}

/// Outcome of a mixed GT + BE simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedReport {
    /// The GT side, identical in meaning to [`SimReport`].
    pub guaranteed: SimReport,
    /// Per-BE-flow statistics.
    pub best_effort: BTreeMap<(CoreId, CoreId), FlowStats>,
    /// Deepest per-link BE queue observed (a congestion indicator).
    pub max_be_queue_depth: usize,
}

impl MixedReport {
    /// `true` when every BE flow drained everything it injected.
    pub fn best_effort_delivered(&self) -> bool {
        self.best_effort
            .values()
            .all(|s| s.delivered_words + s.backlog_words == s.injected_words)
    }
}

/// Simulates GT connections and BE flows together for `cycles` cycles.
///
/// GT behaviour is *identical* to [`crate::simulate_connections`] — BE
/// traffic can never affect it, because BE only uses slots no GT
/// connection reserved.
///
/// # Panics
///
/// Panics if any path is empty or any base slot is out of range.
pub fn simulate_mixed(
    spec: &TdmaSpec,
    guaranteed: &[Connection],
    best_effort: &[BestEffortFlow],
    cycles: u64,
) -> MixedReport {
    let span = noc_obs::span("simulate-mixed");
    span.attr("gt", guaranteed.len());
    span.attr("be", best_effort.len());
    span.attr("cycles", cycles);
    // The BE wheel below costs one op-clock unit per cycle (the GT side
    // ticks inside `simulate_connections`).
    noc_obs::tick(cycles);
    let slots = spec.slots();

    // The GT side runs exactly as in the pure-GT engine.
    let gt_report = crate::engine::simulate_connections(
        spec,
        guaranteed,
        &crate::engine::SimConfig {
            cycles,
            queueing_slack_tables: 1,
        },
    );

    // Static reservation mask: (link, slot) cells owned by GT.
    let max_link = guaranteed
        .iter()
        .flat_map(|c| c.path.iter())
        .chain(best_effort.iter().flat_map(|f| f.path.iter()))
        .map(|l| l.index())
        .max()
        .unwrap_or(0);
    let mut reserved = vec![SlotMask::new(slots); max_link + 1];
    for conn in guaranteed {
        for &base in &conn.base_slots {
            assert!(base < slots, "base slot {base} out of range");
            for (i, l) in conn.path.iter().enumerate() {
                reserved[l.index()].set((base + i) % slots);
            }
        }
    }

    // BE state: one FIFO per link; words are (flow, enqueue_cycle, hop).
    struct BeState {
        source: crate::traffic::TrafficSource,
        stats: FlowStats,
    }
    let mut flows: Vec<BeState> = best_effort
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            assert!(!f.path.is_empty(), "BE flow {:?} has an empty path", f.key);
            BeState {
                source: f.traffic.source(
                    f.inject_bandwidth,
                    spec.width().bytes(),
                    spec.frequency().as_hz(),
                    // Continue the GT index space so a GT connection and
                    // a BE flow at equal list positions never derive the
                    // same per-flow seed.
                    guaranteed.len() + fi,
                ),
                stats: FlowStats::default(),
            }
        })
        .collect();
    let mut link_queues: Vec<VecDeque<(usize, u64, usize)>> = vec![VecDeque::new(); max_link + 1];
    let mut max_depth = 0usize;

    for t in 0..cycles {
        // Source injection: each flow's traffic model decides how many
        // words enter the first link's queue this cycle.
        for (fi, flow) in best_effort.iter().enumerate() {
            let st = &mut flows[fi];
            for _ in 0..st.source.words_at(t) {
                st.stats.injected_words += 1;
                link_queues[flow.path[0].index()].push_back((fi, t, 0));
            }
            st.stats.peak_backlog_words = st
                .stats
                .peak_backlog_words
                .max(st.stats.injected_words - st.stats.delivered_words);
        }
        // Link arbitration: one BE word per free (unreserved) slot cell.
        let slot = (t % slots as u64) as usize;
        // Collect moves first to avoid double-advancing a word in one
        // cycle (a word entering a queue this cycle must wait a cycle).
        let mut moves: Vec<(usize, (usize, u64, usize))> = Vec::new();
        for (li, queue) in link_queues.iter_mut().enumerate() {
            if reserved[li].test(slot) {
                continue;
            }
            if let Some(word) = queue.pop_front() {
                moves.push((li, word));
            }
        }
        for (_, (fi, enq, hop)) in moves {
            let flow = &best_effort[fi];
            if hop + 1 == flow.path.len() {
                // Delivered at the end of this cycle.
                let latency = t + 1 - enq;
                let st = &mut flows[fi].stats;
                st.delivered_words += 1;
                st.total_latency_cycles += latency;
                st.max_latency_cycles = st.max_latency_cycles.max(latency);
            } else {
                link_queues[flow.path[hop + 1].index()].push_back((fi, enq, hop + 1));
            }
        }
        max_depth = max_depth.max(link_queues.iter().map(VecDeque::len).max().unwrap_or(0));
    }

    let mut be_stats = BTreeMap::new();
    let mut injected = 0u64;
    let mut delivered = 0u64;
    for (fi, flow) in best_effort.iter().enumerate() {
        let st = &mut flows[fi].stats;
        st.backlog_words = st.injected_words - st.delivered_words;
        injected += st.injected_words;
        delivered += st.delivered_words;
        be_stats.insert(flow.key, st.clone());
    }
    span.attr("be_injected", injected);
    span.attr("be_delivered", delivered);
    MixedReport {
        guaranteed: gt_report,
        best_effort: be_stats,
        max_be_queue_depth: max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::units::{Frequency, LinkWidth};
    use noc_topology::{MeshBuilder, Topology};

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn fixture() -> (Topology, Vec<LinkId>, TdmaSpec) {
        let mesh = MeshBuilder::new(1, 2).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let ni0 = topo.nis()[0];
        let ni1 = topo.nis()[1];
        let s0 = topo.ni_switch(ni0).unwrap();
        let s1 = topo.ni_switch(ni1).unwrap();
        let path = vec![
            topo.link_between(ni0, s0).unwrap(),
            topo.link_between(s0, s1).unwrap(),
            topo.link_between(s1, ni1).unwrap(),
        ];
        let spec = TdmaSpec::new(8, Frequency::from_mhz(500), LinkWidth::BITS_32);
        (topo, path, spec)
    }

    fn gt(path: &[LinkId], base: Vec<usize>, mbps: u64) -> Connection {
        Connection {
            key: (c(0), c(1)),
            path: path.to_vec(),
            base_slots: base,
            inject_bandwidth: Bandwidth::from_mbps(mbps),
            traffic: TrafficModel::Constant,
            latency_bound_cycles: None,
        }
    }

    fn be(path: &[LinkId], mbps: u64) -> BestEffortFlow {
        BestEffortFlow {
            key: (c(2), c(3)),
            path: path.to_vec(),
            inject_bandwidth: Bandwidth::from_mbps(mbps),
            traffic: TrafficModel::Constant,
        }
    }

    #[test]
    fn be_alone_delivers_everything() {
        let (_t, path, spec) = fixture();
        let report = simulate_mixed(&spec, &[], &[be(&path, 500)], 4096);
        assert!(report.best_effort_delivered());
        let st = &report.best_effort[&(c(2), c(3))];
        assert!(st.delivered_words > 0);
        // Only words injected in the last few cycles may still be in
        // flight when the window closes.
        assert!(st.backlog_words <= 2, "backlog {}", st.backlog_words);
    }

    #[test]
    fn be_uses_only_leftover_slots() {
        let (_t, path, spec) = fixture();
        // GT owns 6 of 8 slots; BE demand of 500 MB/s equals exactly the
        // leftover 2 slots worth — it should (just) keep up.
        let g = gt(&path, vec![0, 1, 2, 3, 4, 5], 1500);
        let report = simulate_mixed(&spec, &[g], &[be(&path, 490)], 8192);
        assert_eq!(report.guaranteed.contention_violations, 0);
        let st = &report.best_effort[&(c(2), c(3))];
        assert!(
            st.backlog_words < 32,
            "BE at leftover capacity should keep up, backlog {}",
            st.backlog_words
        );
    }

    #[test]
    fn be_starves_when_gt_owns_everything() {
        let (_t, path, spec) = fixture();
        let g = gt(&path, (0..8).collect(), 2000);
        let report = simulate_mixed(&spec, &[g], &[be(&path, 200)], 2048);
        let st = &report.best_effort[&(c(2), c(3))];
        assert_eq!(st.delivered_words, 0, "no free slot ever appears");
        assert_eq!(st.backlog_words, st.injected_words);
        assert!(st.injected_words > 0);
        assert!(report.max_be_queue_depth > 0);
    }

    #[test]
    fn gt_is_unaffected_by_be_load() {
        let (_t, path, spec) = fixture();
        let g = gt(&path, vec![0, 4], 500);
        let alone = simulate_mixed(&spec, &[g.clone()], &[], 4096);
        let flooded = simulate_mixed(&spec, &[g], &[be(&path, 1500)], 4096);
        assert_eq!(
            alone.guaranteed, flooded.guaranteed,
            "GT must be isolated from BE"
        );
    }

    #[test]
    fn be_congestion_inflates_latency_gt_stays_bounded() {
        let (_t, path, spec) = fixture();
        // GT owns half the table (leftover BE capacity: 1000 MB/s). An
        // overloaded BE source (1200 MB/s) builds an ever-growing queue:
        // its latency explodes while the GT connection's stays at its
        // analytical bound.
        let g = gt(&path, vec![0, 2, 4, 6], 1000);
        let gt_bound = spec.worst_case_latency_cycles(&[0, 2, 4, 6], path.len());
        let report = simulate_mixed(&spec, &[g], &[be(&path, 1200)], 8192);
        let gt_stats = &report.guaranteed.flows[&(c(0), c(1))];
        let be_stats = &report.best_effort[&(c(2), c(3))];
        assert!(gt_stats.max_latency_cycles <= gt_bound + 8);
        assert!(be_stats.delivered_words > 0);
        assert!(be_stats.backlog_words > 100, "overload must queue up");
        assert!(
            be_stats.mean_latency_cycles() > 10.0 * gt_stats.mean_latency_cycles(),
            "congested BE ({}) should be far slower than GT ({})",
            be_stats.mean_latency_cycles(),
            gt_stats.mean_latency_cycles()
        );
        // And an uncongested BE flow on the same leftover capacity
        // pipelines within a table turn.
        let light = simulate_mixed(
            &spec,
            &[gt(&path, vec![0, 2, 4, 6], 1000)],
            &[be(&path, 400)],
            8192,
        );
        let light_stats = &light.best_effort[&(c(2), c(3))];
        assert!(light_stats.mean_latency_cycles() < 8.0 + path.len() as f64);
    }

    /// Same average BE rate, different shapes: a duty-cycled burst
    /// source spikes far above the leftover capacity and queues, so its
    /// latency and peak backlog dominate the smooth source's even though
    /// both fit the leftover bandwidth on average.
    #[test]
    fn bursty_be_at_same_average_rate_queues_deeper() {
        let (_t, path, spec) = fixture();
        // GT owns 6 of 8 slots; leftover = 500 MB/s. 400 MB/s average
        // fits either way.
        let g = gt(&path, vec![0, 1, 2, 3, 4, 5], 1500);
        let run = |traffic: TrafficModel| {
            let mut f = be(&path, 400);
            f.traffic = traffic;
            simulate_mixed(&spec, &[g.clone()], &[f], 8192)
        };
        let smooth = run(TrafficModel::Constant);
        let bursty = run(TrafficModel::OnOff {
            period: 256,
            on: 32,
            phase: 0,
        });
        assert_eq!(
            smooth.guaranteed, bursty.guaranteed,
            "GT must not see BE shape"
        );
        let ss = &smooth.best_effort[&(c(2), c(3))];
        let bs = &bursty.best_effort[&(c(2), c(3))];
        assert!(bs.delivered_words > 0);
        assert!(
            bs.peak_backlog_words > 2 * ss.peak_backlog_words.max(1),
            "burst peak backlog {} vs smooth {}",
            bs.peak_backlog_words,
            ss.peak_backlog_words
        );
        assert!(
            bs.max_latency_cycles > 2 * ss.max_latency_cycles.max(1),
            "burst max latency {} vs smooth {}",
            bs.max_latency_cycles,
            ss.max_latency_cycles
        );
    }

    /// A seeded random-burst BE scenario is a pure function of
    /// `(seed, flow order)`: two runs produce identical mixed reports,
    /// and each flow gets its own schedule from the shared base seed.
    #[test]
    fn seeded_be_bursts_replay_identically_with_distinct_flows() {
        let (_t, path, spec) = fixture();
        let run = || {
            let mut f1 = be(&path, 200);
            f1.key = (c(2), c(3));
            f1.traffic = TrafficModel::RandomBursts {
                mean_on: 8,
                mean_off: 24,
                seed: 2006,
            };
            let mut f2 = f1.clone();
            f2.key = (c(4), c(5));
            simulate_mixed(&spec, &[], &[f1, f2], 8192)
        };
        let a = run();
        assert_eq!(a, run(), "seeded BE scenario must replay bit-for-bit");
        assert_ne!(
            a.best_effort[&(c(2), c(3))],
            a.best_effort[&(c(4), c(5))],
            "per-flow seeds must decorrelate the two sources"
        );
    }

    /// A GT connection and a BE flow at the same list position with the
    /// same base seed must not share one burst schedule: the BE side
    /// continues the GT index space, so the derived per-flow seeds
    /// differ.
    #[test]
    fn gt_and_be_sources_never_share_a_seed() {
        let (_t, path, spec) = fixture();
        let bursts = TrafficModel::RandomBursts {
            mean_on: 8,
            mean_off: 24,
            seed: 2006,
        };
        let mut g = gt(&path, vec![0, 1, 2, 3], 250);
        g.traffic = bursts.clone();
        let mut f = be(&path, 250);
        f.traffic = bursts;
        let report = simulate_mixed(&spec, &[g], &[f], 8192);
        let gt_stats = &report.guaranteed.flows[&(c(0), c(1))];
        let be_stats = &report.best_effort[&(c(2), c(3))];
        assert!(gt_stats.injected_words > 0 && be_stats.injected_words > 0);
        assert_ne!(
            gt_stats.injected_words, be_stats.injected_words,
            "equal-index GT and BE sources must draw decorrelated schedules"
        );
    }

    #[test]
    fn two_be_flows_share_fifo_fairly_enough() {
        let (_t, path, spec) = fixture();
        let mut f1 = be(&path, 300);
        f1.key = (c(2), c(3));
        let mut f2 = be(&path, 300);
        f2.key = (c(4), c(5));
        let report = simulate_mixed(&spec, &[], &[f1, f2], 8192);
        let s1 = &report.best_effort[&(c(2), c(3))];
        let s2 = &report.best_effort[&(c(4), c(5))];
        assert!(s1.delivered_words > 0 && s2.delivered_words > 0);
        // Combined 600 MB/s fits the 2000 MB/s link: both drain.
        assert!(report.best_effort_delivered());
    }
}
