//! Integration: the simulator replaying full mapped designs, including
//! mixed GT + best-effort loads, saturated links, and idle use-cases.

use noc_benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_sim::{
    simulate_group, simulate_mixed, simulate_use_case, BestEffortFlow, Connection, SimConfig,
    TrafficModel,
};
use noc_tdma::TdmaSpec;
use noc_topology::units::{Bandwidth, Latency};
use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
use noc_usecase::UseCaseGroups;
use nocmap::design::design_smallest_mesh;
use nocmap::MapperOptions;

fn design(soc: &noc_usecase::spec::SocSpec) -> (UseCaseGroups, nocmap::MappingSolution) {
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let sol = design_smallest_mesh(
        soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        400,
    )
    .expect("benchmark maps");
    (groups, sol)
}

#[test]
fn d3_every_group_clean_at_full_load() {
    let soc = SocDesign::D3.generate();
    let (groups, sol) = design(&soc);
    sol.verify(&soc, &groups).unwrap();
    for g in 0..groups.group_count() {
        let report = simulate_group(
            &sol,
            g,
            &SimConfig {
                cycles: 2048,
                ..Default::default()
            },
        );
        assert_eq!(report.contention_violations, 0, "group {g}");
        assert_eq!(report.latency_violations, 0, "group {g}");
    }
}

#[test]
fn sp_use_cases_meet_delivered_bandwidth() {
    let soc = SpreadConfig::paper(3).generate(77);
    let (groups, sol) = design(&soc);
    let spec = sol.spec();
    let report = simulate_use_case(
        &sol,
        &soc,
        &groups,
        0,
        &SimConfig {
            cycles: 65_536,
            ..Default::default()
        },
    );
    assert_eq!(report.contention_violations, 0);
    assert!(report.all_flows_delivered());
    // Delivered bandwidth over a long window approaches the injected rate
    // for every flow (within one word of quantization).
    for flow in soc.use_cases()[0].flows() {
        let delivered = report
            .delivered_bandwidth(
                flow.endpoints(),
                spec.width().bytes(),
                spec.frequency().as_hz(),
            )
            .expect("flow simulated");
        let demand = flow.bandwidth().as_mbps_f64();
        let got = delivered.as_mbps_f64();
        assert!(
            got >= demand * 0.98 - 1.0,
            "flow {:?}: delivered {got:.1} of {demand:.1} MB/s",
            flow.endpoints()
        );
    }
}

#[test]
fn best_effort_rides_a_real_design() {
    let soc = SocDesign::D1.generate();
    let (_groups, sol) = design(&soc);
    let spec = sol.spec();
    let gt: Vec<Connection> = sol
        .group_config(0)
        .iter()
        .map(|(&key, route)| Connection {
            key,
            path: route.path.clone(),
            base_slots: route.base_slots.clone(),
            inject_bandwidth: route.bandwidth,
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(
                spec.worst_case_latency_cycles(&route.base_slots, route.hops()),
            ),
        })
        .collect();
    let (&(src, dst), probe) = sol.group_config(0).iter().next().unwrap();
    let be = BestEffortFlow {
        key: (src, dst),
        path: probe.path.clone(),
        inject_bandwidth: Bandwidth::from_mbps(100),
        traffic: TrafficModel::Constant,
    };
    let mixed = simulate_mixed(&spec, &gt, &[be], 8192);
    assert_eq!(mixed.guaranteed.contention_violations, 0);
    assert_eq!(mixed.guaranteed.latency_violations, 0);
    let stats = &mixed.best_effort[&(src, dst)];
    assert!(
        stats.delivered_words > 0,
        "BE finds leftover slots on a real design"
    );
    // GT at full provisioned load must be byte-identical with and without
    // the BE rider.
    let alone = simulate_mixed(&spec, &gt, &[], 8192);
    assert_eq!(alone.guaranteed, mixed.guaranteed);
}

/// Every group of two full benchgen suites (one spread, one bottleneck)
/// replays clean: no slot contention, no late words. This is the
/// phase-4 check of the methodology applied suite-wide, not just to a
/// hand-picked group.
#[test]
fn every_group_of_two_benchgen_suites_replays_clean() {
    let suites = [
        ("sp4", SpreadConfig::paper(4).generate(2006)),
        ("bot4", BottleneckConfig::paper(4).generate(2006)),
    ];
    for (label, soc) in suites {
        let (groups, sol) = design(&soc);
        sol.verify(&soc, &groups).unwrap();
        for g in 0..groups.group_count() {
            let report = simulate_group(
                &sol,
                g,
                &SimConfig {
                    cycles: 2048,
                    ..Default::default()
                },
            );
            assert_eq!(report.contention_violations, 0, "{label} group {g}");
            assert_eq!(report.latency_violations, 0, "{label} group {g}");
            assert!(report.all_flows_delivered(), "{label} group {g}");
        }
    }
}

/// A best-effort rider injecting at full link capacity saturates its
/// path: the backlog grows and delivery falls short, while the GT
/// traffic sharing those links stays byte-identical — the TDMA isolation
/// property under worst-case BE pressure.
#[test]
fn saturated_link_starves_best_effort_but_never_gt() {
    let soc = SocDesign::D1.generate();
    let (_groups, sol) = design(&soc);
    let spec = sol.spec();
    let gt: Vec<Connection> = sol
        .group_config(0)
        .iter()
        .map(|(&key, route)| Connection {
            key,
            path: route.path.clone(),
            base_slots: route.base_slots.clone(),
            inject_bandwidth: route.bandwidth,
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(
                spec.worst_case_latency_cycles(&route.base_slots, route.hops()),
            ),
        })
        .collect();
    let (&(src, dst), probe) = sol.group_config(0).iter().next().unwrap();
    // Inject at the raw link capacity: the reserved GT slots on the path
    // guarantee the leftover is strictly smaller, so the BE flow cannot
    // keep up.
    let capacity = spec.width().capacity(spec.frequency());
    let be = BestEffortFlow {
        key: (src, dst),
        path: probe.path.clone(),
        inject_bandwidth: capacity,
        traffic: TrafficModel::Constant,
    };
    let cycles = 8192;
    let mixed = simulate_mixed(&spec, &gt, &[be], cycles);
    assert_eq!(mixed.guaranteed.contention_violations, 0);
    assert_eq!(mixed.guaranteed.latency_violations, 0);
    let stats = &mixed.best_effort[&(src, dst)];
    assert!(
        stats.backlog_words > 0,
        "a capacity-rate BE flow must backlog behind GT reservations"
    );
    assert!(
        stats.delivered_words < stats.injected_words,
        "saturation means BE cannot be fully delivered"
    );
    assert!(mixed.max_be_queue_depth > 0);
    // GT at full provisioned load is byte-identical with and without the
    // saturating rider.
    let alone = simulate_mixed(&spec, &gt, &[], cycles);
    assert_eq!(alone.guaranteed, mixed.guaranteed);
}

/// An idle use-case (declared but communicating nothing — a sleep mode)
/// maps to an empty configuration and simulates trivially clean, while
/// the active use-cases are unaffected.
#[test]
fn idle_use_case_maps_and_simulates_clean() {
    let c = CoreId::new;
    let mut soc = SocSpec::new("with-idle");
    soc.add_use_case(
        UseCaseBuilder::new("active")
            .flow(
                c(0),
                c(1),
                Bandwidth::from_mbps(400),
                Latency::UNCONSTRAINED,
            )
            .unwrap()
            .flow(
                c(1),
                c(2),
                Bandwidth::from_mbps(150),
                Latency::UNCONSTRAINED,
            )
            .unwrap()
            .build(),
    );
    soc.add_use_case(UseCaseBuilder::new("sleep").build());
    let (groups, sol) = design(&soc);
    sol.verify(&soc, &groups).unwrap();

    let idle_group = groups.group_of(noc_usecase::spec::UseCaseId::new(1));
    assert_eq!(
        sol.group_config(idle_group).len(),
        0,
        "an idle use-case needs no connections"
    );
    for uc in 0..soc.use_case_count() {
        let report = simulate_use_case(&sol, &soc, &groups, uc, &SimConfig::default());
        assert_eq!(report.contention_violations, 0, "use-case {uc}");
        assert_eq!(report.latency_violations, 0, "use-case {uc}");
        assert!(report.all_flows_delivered(), "use-case {uc}");
    }
}

#[test]
fn simulation_results_are_deterministic() {
    let soc = SpreadConfig::paper(2).generate(5);
    let (groups, sol) = design(&soc);
    let a = simulate_use_case(&sol, &soc, &groups, 1, &SimConfig::default());
    let b = simulate_use_case(&sol, &soc, &groups, 1, &SimConfig::default());
    assert_eq!(a, b);
}
