//! A plain-text interchange format for multi-use-case specifications.
//!
//! Design teams pass communication specs around as simple tables; this
//! module defines a line-oriented format that round-trips [`SocSpec`]
//! without external dependencies:
//!
//! ```text
//! # comment
//! soc viper2
//! usecase hd-playback
//! flow 0 1 200        # src dst bandwidth_MBps (unconstrained latency)
//! flow 1 2 50 10      # src dst bandwidth_MBps latency_us
//! usecase recording
//! flow 0 3 75
//! ```
//!
//! Rules: one `soc NAME` line first; `usecase NAME` starts a use-case;
//! `flow SRC DST BW [LAT_US]` adds a flow to the current use-case; `#`
//! starts a comment; blank lines are ignored.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use noc_topology::units::{Bandwidth, Latency};

use crate::spec::{CoreId, Flow, SocSpec, UseCaseBuilder};
use crate::SpecError;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseSpecError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `flow` line appeared before any `usecase` line.
    FlowOutsideUseCase {
        /// 1-based line number.
        line: usize,
    },
    /// The `soc` header line is missing.
    MissingHeader,
    /// A flow was structurally invalid (self-flow, duplicate, zero
    /// bandwidth).
    Spec {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        source: SpecError,
    },
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseSpecError::FlowOutsideUseCase { line } => {
                write!(f, "line {line}: flow before any 'usecase' line")
            }
            ParseSpecError::MissingHeader => write!(f, "missing 'soc NAME' header line"),
            ParseSpecError::Spec { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl Error for ParseSpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseSpecError::Spec { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes a spec to the text format.
///
/// Latency bounds are written in whole microseconds (the format's
/// granularity); unconstrained flows omit the field.
pub fn to_text(soc: &SocSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "soc {}", soc.name());
    for uc in soc.use_cases() {
        let _ = writeln!(out, "usecase {}", uc.name());
        for flow in uc.flows() {
            let bw = flow.bandwidth().as_mbps_f64();
            if flow.latency().is_unconstrained() {
                let _ = writeln!(out, "flow {} {} {}", flow.src().raw(), flow.dst().raw(), bw);
            } else {
                let _ = writeln!(
                    out,
                    "flow {} {} {} {}",
                    flow.src().raw(),
                    flow.dst().raw(),
                    bw,
                    flow.latency().as_ns() as f64 / 1000.0
                );
            }
        }
    }
    out
}

/// Parses a spec from the text format.
///
/// # Errors
///
/// [`ParseSpecError`] describing the first offending line.
pub fn from_text(text: &str) -> Result<SocSpec, ParseSpecError> {
    let mut soc: Option<SocSpec> = None;
    let mut current: Option<UseCaseBuilder> = None;

    let finish = |soc: &mut Option<SocSpec>, current: &mut Option<UseCaseBuilder>| {
        if let (Some(s), Some(b)) = (soc.as_mut(), current.take()) {
            s.add_use_case(b.build());
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("soc") => {
                let name = words.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(ParseSpecError::Syntax {
                        line: line_no,
                        message: "'soc' needs a name".into(),
                    });
                }
                if soc.is_some() {
                    return Err(ParseSpecError::Syntax {
                        line: line_no,
                        message: "duplicate 'soc' line".into(),
                    });
                }
                soc = Some(SocSpec::new(name));
            }
            Some("usecase") => {
                if soc.is_none() {
                    return Err(ParseSpecError::MissingHeader);
                }
                let name = words.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(ParseSpecError::Syntax {
                        line: line_no,
                        message: "'usecase' needs a name".into(),
                    });
                }
                finish(&mut soc, &mut current);
                current = Some(UseCaseBuilder::new(name));
            }
            Some("flow") => {
                let Some(builder) = current.as_mut() else {
                    return Err(ParseSpecError::FlowOutsideUseCase { line: line_no });
                };
                let fields: Vec<&str> = words.collect();
                if !(3..=4).contains(&fields.len()) {
                    return Err(ParseSpecError::Syntax {
                        line: line_no,
                        message: "'flow' takes SRC DST BW [LAT_US]".into(),
                    });
                }
                let parse_u32 = |s: &str, what: &str| {
                    s.parse::<u32>().map_err(|_| ParseSpecError::Syntax {
                        line: line_no,
                        message: format!("invalid {what} '{s}'"),
                    })
                };
                let parse_f64 = |s: &str, what: &str| {
                    s.parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| ParseSpecError::Syntax {
                            line: line_no,
                            message: format!("invalid {what} '{s}'"),
                        })
                };
                let src = CoreId::new(parse_u32(fields[0], "source core")?);
                let dst = CoreId::new(parse_u32(fields[1], "destination core")?);
                let bw = Bandwidth::from_mbps_f64(parse_f64(fields[2], "bandwidth")?);
                let lat = match fields.get(3) {
                    Some(s) => {
                        let us = parse_f64(s, "latency")?;
                        Latency::from_ns((us * 1000.0).round() as u64)
                    }
                    None => Latency::UNCONSTRAINED,
                };
                let flow = Flow::new(src, dst, bw, lat).map_err(|source| ParseSpecError::Spec {
                    line: line_no,
                    source,
                })?;
                builder
                    .add_flow(flow)
                    .map_err(|source| ParseSpecError::Spec {
                        line: line_no,
                        source,
                    })?;
            }
            Some(other) => {
                return Err(ParseSpecError::Syntax {
                    line: line_no,
                    message: format!("unknown directive '{other}'"),
                });
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    finish(&mut soc, &mut current);
    soc.ok_or(ParseSpecError::MissingHeader)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn parse_minimal() {
        let soc = from_text("soc demo\nusecase u0\nflow 0 1 100\n").unwrap();
        assert_eq!(soc.name(), "demo");
        assert_eq!(soc.use_case_count(), 1);
        let f = soc.use_cases()[0].flow_between(c(0), c(1)).unwrap();
        assert_eq!(f.bandwidth(), Bandwidth::from_mbps(100));
        assert!(f.latency().is_unconstrained());
    }

    #[test]
    fn parse_with_latency_comments_and_blanks() {
        let text = "\n# header comment\nsoc demo\n\nusecase u0  # trailing\nflow 0 1 12.5 3.5\n";
        let soc = from_text(text).unwrap();
        let f = soc.use_cases()[0].flow_between(c(0), c(1)).unwrap();
        assert_eq!(f.bandwidth(), Bandwidth::from_mbps_f64(12.5));
        assert_eq!(f.latency(), Latency::from_ns(3500));
    }

    #[test]
    fn roundtrip_preserves_spec() {
        let mut soc = SocSpec::new("round trip");
        soc.add_use_case(
            UseCaseBuilder::new("alpha mode")
                .flow(c(0), c(1), Bandwidth::from_mbps(200), Latency::from_us(10))
                .unwrap()
                .flow(c(1), c(2), Bandwidth::from_mbps(55), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        soc.add_use_case(
            UseCaseBuilder::new("beta")
                .flow(c(2), c(0), Bandwidth::from_mbps(5), Latency::UNCONSTRAINED)
                .unwrap()
                .build(),
        );
        let text = to_text(&soc);
        let back = from_text(&text).unwrap();
        assert_eq!(back, soc);
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(from_text(""), Err(ParseSpecError::MissingHeader)));
        assert!(matches!(
            from_text("flow 0 1 5"),
            Err(ParseSpecError::FlowOutsideUseCase { line: 1 })
        ));
        let e = from_text("soc x\nusecase u\nflow 0 0 5").unwrap_err();
        assert!(matches!(e, ParseSpecError::Spec { line: 3, .. }));
        let e = from_text("soc x\nusecase u\nflow 0 1").unwrap_err();
        assert!(matches!(e, ParseSpecError::Syntax { line: 3, .. }));
        let e = from_text("soc x\nbogus").unwrap_err();
        assert!(matches!(e, ParseSpecError::Syntax { line: 2, .. }));
        let e = from_text("soc x\nsoc y").unwrap_err();
        assert!(matches!(e, ParseSpecError::Syntax { line: 2, .. }));
        let e = from_text("soc x\nusecase u\nflow a 1 5").unwrap_err();
        assert!(matches!(e, ParseSpecError::Syntax { line: 3, .. }));
    }

    #[test]
    fn duplicate_flow_reported_with_line() {
        let e = from_text("soc x\nusecase u\nflow 0 1 5\nflow 0 1 6").unwrap_err();
        assert!(matches!(
            e,
            ParseSpecError::Spec {
                line: 4,
                source: SpecError::DuplicateFlow { .. }
            }
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = from_text("soc x\nusecase u\nflow 0 1").unwrap_err();
        let msg = e.to_string();
        assert!(msg.starts_with("line 3:"), "{msg}");
    }

    #[test]
    fn generated_specs_roundtrip() {
        // A larger spec exercising fractional bandwidths.
        let mut soc = SocSpec::new("big");
        for u in 0..4u32 {
            let mut b = UseCaseBuilder::new(format!("uc{u}"));
            for i in 0..10u32 {
                b.add_flow(
                    Flow::new(
                        c(i),
                        c((i + u + 1) % 12),
                        Bandwidth::from_bytes_per_sec(1_000_000 + 37_500 * u64::from(i)),
                        if i % 3 == 0 {
                            Latency::from_us(7)
                        } else {
                            Latency::UNCONSTRAINED
                        },
                    )
                    .unwrap(),
                )
                .unwrap();
            }
            soc.add_use_case(b.build());
        }
        let back = from_text(&to_text(&soc)).unwrap();
        // Bandwidths are written in MB/s with float formatting; equality
        // may be off by sub-byte rounding, so compare per-flow within 1
        // byte/s.
        assert_eq!(back.use_case_count(), soc.use_case_count());
        for (a, b) in soc.use_cases().iter().zip(back.use_cases()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.flow_count(), b.flow_count());
            for f in a.flows() {
                let g = b.flow_between(f.src(), f.dst()).unwrap();
                let diff = f
                    .bandwidth()
                    .as_bytes_per_sec()
                    .abs_diff(g.bandwidth().as_bytes_per_sec());
                assert!(diff <= 1, "bandwidth drift {diff}");
                assert_eq!(f.latency(), g.latency());
            }
        }
    }
}
