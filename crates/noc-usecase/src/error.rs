use std::error::Error;
use std::fmt;

use crate::spec::{CoreId, UseCaseId};

/// Errors raised while building use-case specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A flow's source equals its destination.
    SelfFlow {
        /// The core flowing to itself.
        core: CoreId,
    },
    /// A flow was declared with zero bandwidth.
    ZeroBandwidth {
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
    },
    /// Two flows share one `(src, dst)` pair within a use-case.
    DuplicateFlow {
        /// Flow source.
        src: CoreId,
        /// Flow destination.
        dst: CoreId,
    },
    /// A use-case id referenced a use-case that does not exist.
    UnknownUseCase {
        /// The dangling id.
        id: UseCaseId,
        /// Number of use-cases that exist.
        count: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::SelfFlow { core } => {
                write!(f, "flow from {core} to itself is not allowed")
            }
            SpecError::ZeroBandwidth { src, dst } => {
                write!(f, "flow {src} -> {dst} has zero bandwidth")
            }
            SpecError::DuplicateFlow { src, dst } => {
                write!(f, "use-case already has a flow {src} -> {dst}")
            }
            SpecError::UnknownUseCase { id, count } => {
                write!(f, "use-case {id} does not exist (only {count} defined)")
            }
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SpecError>();
    }

    #[test]
    fn messages() {
        let m = SpecError::UnknownUseCase {
            id: UseCaseId::new(9),
            count: 3,
        }
        .to_string();
        assert_eq!(m, "use-case U9 does not exist (only 3 defined)");
    }
}
