//! Phase 2 of the methodology: the switching graph and Algorithm 1.
//!
//! Use-cases that require *smooth switching* between them (no NoC
//! reconfiguration) are connected by an edge in the undirected switching
//! graph `SG` (Definition 1). Every compound mode is automatically tied to
//! each of its constituents, because entering or leaving a parallel mode
//! must not disturb the use-cases that keep running. Algorithm 1 groups
//! use-cases by reachability in `SG` (connected components found with
//! repeated depth-first search); members of one group must share a single
//! NoC configuration, while crossings between groups may reconfigure paths
//! and slot tables.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::spec::UseCaseId;

/// The undirected switching graph `SG(SV, SE)` over use-cases.
///
/// ```
/// use noc_usecase::{SwitchingGraph, spec::UseCaseId};
///
/// // Figure 4 of the paper: 10 use-cases, compounds U_123 (id 8) and
/// // U_45 (id 9), plus a smooth edge between U6 and U7.
/// let u = |i| UseCaseId::new(i);
/// let mut sg = SwitchingGraph::new(10);
/// sg.add_compound(u(8), &[u(0), u(1), u(2)]); // U_123
/// sg.add_compound(u(9), &[u(3), u(4)]);       // U_45
/// sg.add_smooth_pair(u(5), u(6));             // U6 -- U7
/// let groups = sg.group();
/// assert_eq!(groups.group_count(), 4);        // {0,1,2,8}, {3,4,9}, {5,6}, {7}
/// assert_eq!(groups.group_of(u(0)), groups.group_of(u(8)));
/// assert_ne!(groups.group_of(u(0)), groups.group_of(u(7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchingGraph {
    vertices: usize,
    adjacency: Vec<BTreeSet<usize>>,
}

impl SwitchingGraph {
    /// Creates a switching graph over `use_case_count` isolated vertices.
    pub fn new(use_case_count: usize) -> Self {
        SwitchingGraph {
            vertices: use_case_count,
            adjacency: vec![BTreeSet::new(); use_case_count],
        }
    }

    /// Number of vertices (use-cases).
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Declares that `a` and `b` need smooth switching (an `SE` edge).
    /// Self-edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_smooth_pair(&mut self, a: UseCaseId, b: UseCaseId) {
        let (i, j) = (a.index(), b.index());
        assert!(i < self.vertices, "use-case {a} out of range");
        assert!(j < self.vertices, "use-case {b} out of range");
        if i == j {
            return;
        }
        self.adjacency[i].insert(j);
        self.adjacency[j].insert(i);
    }

    /// Ties a compound mode to each of its constituents: transitions into
    /// and out of a parallel mode must be smooth, so the compound shares a
    /// configuration with every member (Section 4: "We automatically
    /// consider those use-cases in a compound-mode to also require
    /// smooth-switching").
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn add_compound(&mut self, compound: UseCaseId, constituents: &[UseCaseId]) {
        for &m in constituents {
            self.add_smooth_pair(compound, m);
        }
    }

    /// Returns `true` if `a` and `b` are directly connected.
    pub fn has_edge(&self, a: UseCaseId, b: UseCaseId) -> bool {
        self.adjacency
            .get(a.index())
            .is_some_and(|adj| adj.contains(&b.index()))
    }

    /// Algorithm 1: groups all use-cases reachable from each other.
    ///
    /// Implementation follows the paper literally: repeatedly pick an
    /// unvisited vertex, run a depth-first search, and group everything
    /// the search traverses.
    pub fn group(&self) -> UseCaseGroups {
        let mut group_of = vec![usize::MAX; self.vertices];
        let mut groups: Vec<Vec<UseCaseId>> = Vec::new();
        for start in 0..self.vertices {
            if group_of[start] != usize::MAX {
                continue;
            }
            let gid = groups.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            group_of[start] = gid;
            while let Some(v) = stack.pop() {
                members.push(UseCaseId::new(v as u32));
                for &w in &self.adjacency[v] {
                    if group_of[w] == usize::MAX {
                        group_of[w] = gid;
                        stack.push(w);
                    }
                }
            }
            members.sort_unstable();
            groups.push(members);
        }
        UseCaseGroups { group_of, groups }
    }
}

/// The result of Algorithm 1: a partition of use-cases into configuration
/// groups. Use-cases in one group share paths and slot tables; the NoC may
/// be reconfigured when switching between groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UseCaseGroups {
    /// Group index per use-case (dense).
    group_of: Vec<usize>,
    /// Members of each group, sorted.
    groups: Vec<Vec<UseCaseId>>,
}

impl UseCaseGroups {
    /// A partition where every use-case sits alone in its own group —
    /// full reconfiguration freedom (no smooth-switching constraints).
    pub fn singletons(use_case_count: usize) -> Self {
        UseCaseGroups {
            group_of: (0..use_case_count).collect(),
            groups: (0..use_case_count)
                .map(|i| vec![UseCaseId::new(i as u32)])
                .collect(),
        }
    }

    /// A partition with all use-cases in one group — the NoC is never
    /// reconfigured (the ablation counterpart of grouping).
    pub fn single_group(use_case_count: usize) -> Self {
        UseCaseGroups {
            group_of: vec![0; use_case_count],
            groups: vec![(0..use_case_count)
                .map(|i| UseCaseId::new(i as u32))
                .collect()],
        }
    }

    /// Number of use-cases covered by the partition.
    pub fn use_case_count(&self) -> usize {
        self.group_of.len()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group index of a use-case.
    ///
    /// # Panics
    ///
    /// Panics if `uc` is out of range.
    pub fn group_of(&self, uc: UseCaseId) -> usize {
        self.group_of[uc.index()]
    }

    /// Members of group `g`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn members(&self, g: usize) -> &[UseCaseId] {
        &self.groups[g]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<UseCaseId>] {
        &self.groups
    }

    /// Whether two use-cases must share one NoC configuration.
    pub fn same_group(&self, a: UseCaseId, b: UseCaseId) -> bool {
        self.group_of(a) == self.group_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UseCaseId {
        UseCaseId::new(i)
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let sg = SwitchingGraph::new(4);
        let g = sg.group();
        assert_eq!(g.group_count(), 4);
        for i in 0..4 {
            assert_eq!(g.members(g.group_of(u(i))), &[u(i)]);
        }
        assert_eq!(g, UseCaseGroups::singletons(4));
    }

    #[test]
    fn figure4_grouping() {
        // Paper Figure 4: U1..U8 are ids 0..7, U_123 id 8, U_45 id 9.
        let mut sg = SwitchingGraph::new(10);
        sg.add_compound(u(8), &[u(0), u(1), u(2)]);
        sg.add_compound(u(9), &[u(3), u(4)]);
        sg.add_smooth_pair(u(5), u(6));
        let g = sg.group();
        assert_eq!(g.group_count(), 4);
        assert_eq!(g.members(g.group_of(u(0))), &[u(0), u(1), u(2), u(8)]);
        assert_eq!(g.members(g.group_of(u(3))), &[u(3), u(4), u(9)]);
        assert_eq!(g.members(g.group_of(u(5))), &[u(5), u(6)]);
        assert_eq!(g.members(g.group_of(u(7))), &[u(7)]);
    }

    #[test]
    fn transitive_chains_merge() {
        let mut sg = SwitchingGraph::new(5);
        sg.add_smooth_pair(u(0), u(1));
        sg.add_smooth_pair(u(1), u(2));
        sg.add_smooth_pair(u(3), u(4));
        let g = sg.group();
        assert_eq!(g.group_count(), 2);
        assert!(g.same_group(u(0), u(2)));
        assert!(!g.same_group(u(2), u(3)));
    }

    #[test]
    fn grouping_is_a_partition() {
        let mut sg = SwitchingGraph::new(8);
        sg.add_smooth_pair(u(0), u(3));
        sg.add_smooth_pair(u(3), u(5));
        sg.add_smooth_pair(u(1), u(2));
        let g = sg.group();
        // Every use-case appears in exactly one group.
        let mut seen = vec![0usize; 8];
        for grp in g.groups() {
            for &m in grp {
                seen[m.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // group_of is consistent with members().
        for (gi, grp) in g.groups().iter().enumerate() {
            for &m in grp {
                assert_eq!(g.group_of(m), gi);
            }
        }
    }

    #[test]
    fn self_edges_ignored_and_duplicates_idempotent() {
        let mut sg = SwitchingGraph::new(3);
        sg.add_smooth_pair(u(0), u(0));
        assert_eq!(sg.edge_count(), 0);
        sg.add_smooth_pair(u(0), u(1));
        sg.add_smooth_pair(u(1), u(0));
        assert_eq!(sg.edge_count(), 1);
        assert!(sg.has_edge(u(0), u(1)));
        assert!(sg.has_edge(u(1), u(0)));
        assert!(!sg.has_edge(u(0), u(2)));
    }

    #[test]
    fn single_group_partition() {
        let g = UseCaseGroups::single_group(5);
        assert_eq!(g.group_count(), 1);
        assert!(g.same_group(u(0), u(4)));
        assert_eq!(g.members(0).len(), 5);
        assert_eq!(g.use_case_count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut sg = SwitchingGraph::new(2);
        sg.add_smooth_pair(u(0), u(5));
    }

    #[test]
    fn fully_connected_collapses_to_one_group() {
        let mut sg = SwitchingGraph::new(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                sg.add_smooth_pair(u(i), u(j));
            }
        }
        let g = sg.group();
        assert_eq!(g.group_count(), 1);
        assert_eq!(g, {
            let mut expected = UseCaseGroups::single_group(6);
            expected.groups[0].sort_unstable();
            expected
        });
    }
}
