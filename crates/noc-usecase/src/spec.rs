//! Core, flow and use-case specifications (Definition 2 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use noc_topology::units::{Bandwidth, Latency};
use serde::{Deserialize, Serialize};

use crate::error::SpecError;

/// Identifier of a SoC core (processor, memory, accelerator, peripheral).
///
/// Core ids are global to the SoC: the same core appears in several
/// use-cases under the same id, which is what lets the mapper share one
/// core→NI mapping across all use-cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(u32);

impl CoreId {
    /// Creates a core id.
    pub const fn new(raw: u32) -> Self {
        CoreId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The dense index of this core.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of a use-case within a [`SocSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UseCaseId(u32);

impl UseCaseId {
    /// Creates a use-case id from a dense index.
    pub const fn new(raw: u32) -> Self {
        UseCaseId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The dense index of this use-case.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UseCaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// Identifier of a flow within one use-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id from a dense index.
    pub const fn new(raw: u32) -> Self {
        FlowId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The dense index of this flow.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A directed traffic flow between two cores with its design constraints:
/// a maximum traffic rate (`bandwidth`, written `bw_{i,j}` in the paper)
/// and a worst-case packet-delay bound (`latency`, `lat_{i,j}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    src: CoreId,
    dst: CoreId,
    bandwidth: Bandwidth,
    latency: Latency,
}

impl Flow {
    /// Creates a flow.
    ///
    /// # Errors
    ///
    /// [`SpecError::SelfFlow`] when `src == dst`;
    /// [`SpecError::ZeroBandwidth`] for an empty flow.
    pub fn new(
        src: CoreId,
        dst: CoreId,
        bandwidth: Bandwidth,
        latency: Latency,
    ) -> Result<Self, SpecError> {
        if src == dst {
            return Err(SpecError::SelfFlow { core: src });
        }
        if bandwidth.is_zero() {
            return Err(SpecError::ZeroBandwidth { src, dst });
        }
        Ok(Flow {
            src,
            dst,
            bandwidth,
            latency,
        })
    }

    /// Producer core.
    pub const fn src(&self) -> CoreId {
        self.src
    }

    /// Consumer core.
    pub const fn dst(&self) -> CoreId {
        self.dst
    }

    /// Maximum traffic rate of the flow.
    pub const fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Worst-case latency bound of the flow.
    pub const fn latency(&self) -> Latency {
        self.latency
    }

    /// The `(src, dst)` pair.
    pub const fn endpoints(&self) -> (CoreId, CoreId) {
        (self.src, self.dst)
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} @ {}", self.src, self.dst, self.bandwidth)
    }
}

/// One use-case: a named set of flows (the set `F_i` of Definition 2).
///
/// At most one flow exists per directed `(src, dst)` pair — the paper's
/// compound-mode arithmetic and step 5 of Algorithm 2 ("choose the flow
/// that has the same source and destination vertices") both rely on that.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "UseCaseRepr", into = "UseCaseRepr")]
pub struct UseCase {
    name: String,
    flows: Vec<Flow>,
    by_pair: BTreeMap<(CoreId, CoreId), FlowId>,
}

/// Serialized shape of a [`UseCase`]; the pair index is rebuilt on load.
#[derive(Serialize, Deserialize)]
struct UseCaseRepr {
    name: String,
    flows: Vec<Flow>,
}

impl From<UseCaseRepr> for UseCase {
    fn from(r: UseCaseRepr) -> Self {
        UseCase::from_parts(r.name, r.flows)
    }
}

impl From<UseCase> for UseCaseRepr {
    fn from(u: UseCase) -> Self {
        UseCaseRepr {
            name: u.name,
            flows: u.flows,
        }
    }
}

impl UseCase {
    pub(crate) fn from_parts(name: String, flows: Vec<Flow>) -> Self {
        let by_pair = flows
            .iter()
            .enumerate()
            .map(|(i, f)| (f.endpoints(), FlowId::new(i as u32)))
            .collect();
        UseCase {
            name,
            flows,
            by_pair,
        }
    }

    /// The use-case's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All flows, in insertion order (`FlowId` order).
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Flow lookup by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// The flow between `src` and `dst`, if the use-case has one.
    pub fn flow_between(&self, src: CoreId, dst: CoreId) -> Option<&Flow> {
        self.flow_id_between(src, dst).map(|id| self.flow(id))
    }

    /// The id of the flow between `src` and `dst`, if any.
    pub fn flow_id_between(&self, src: CoreId, dst: CoreId) -> Option<FlowId> {
        self.by_pair.get(&(src, dst)).copied()
    }

    /// Every core referenced by this use-case.
    pub fn cores(&self) -> BTreeSet<CoreId> {
        self.flows.iter().flat_map(|f| [f.src(), f.dst()]).collect()
    }

    /// Sum of all flow bandwidths.
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.flows.iter().map(|f| f.bandwidth()).sum()
    }

    /// The largest single flow bandwidth, or zero for an empty use-case.
    pub fn max_flow_bandwidth(&self) -> Bandwidth {
        self.flows
            .iter()
            .map(|f| f.bandwidth())
            .max()
            .unwrap_or(Bandwidth::ZERO)
    }
}

/// Builder for [`UseCase`]; rejects duplicate `(src, dst)` pairs.
#[derive(Debug, Clone)]
pub struct UseCaseBuilder {
    name: String,
    flows: Vec<Flow>,
    pairs: BTreeSet<(CoreId, CoreId)>,
}

impl UseCaseBuilder {
    /// Starts a use-case named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        UseCaseBuilder {
            name: name.into(),
            flows: Vec::new(),
            pairs: BTreeSet::new(),
        }
    }

    /// Adds a flow.
    ///
    /// # Errors
    ///
    /// All [`Flow::new`] errors, plus [`SpecError::DuplicateFlow`] when the
    /// `(src, dst)` pair already has a flow in this use-case.
    pub fn flow(
        mut self,
        src: CoreId,
        dst: CoreId,
        bandwidth: Bandwidth,
        latency: Latency,
    ) -> Result<Self, SpecError> {
        self.add_flow(Flow::new(src, dst, bandwidth, latency)?)?;
        Ok(self)
    }

    /// Adds a pre-constructed flow (non-consuming form for loops).
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateFlow`] when the pair already has a flow.
    pub fn add_flow(&mut self, flow: Flow) -> Result<&mut Self, SpecError> {
        if !self.pairs.insert(flow.endpoints()) {
            return Err(SpecError::DuplicateFlow {
                src: flow.src(),
                dst: flow.dst(),
            });
        }
        self.flows.push(flow);
        Ok(self)
    }

    /// Finishes the use-case.
    pub fn build(self) -> UseCase {
        UseCase::from_parts(self.name, self.flows)
    }
}

/// A complete multi-use-case SoC specification: the input `U1 … Un` of the
/// design methodology (Figure 3).
///
/// ```
/// use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
/// use noc_topology::units::{Bandwidth, Latency};
///
/// # fn main() -> Result<(), noc_usecase::SpecError> {
/// let mut soc = SocSpec::new("example");
/// let uc = UseCaseBuilder::new("uc0")
///     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(100), Latency::UNCONSTRAINED)?
///     .build();
/// let id = soc.add_use_case(uc);
/// assert_eq!(soc.use_case(id).name(), "uc0");
/// assert_eq!(soc.core_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocSpec {
    name: String,
    use_cases: Vec<UseCase>,
}

impl SocSpec {
    /// Creates an empty spec named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SocSpec {
            name: name.into(),
            use_cases: Vec::new(),
        }
    }

    /// The SoC's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a use-case and returns its id.
    pub fn add_use_case(&mut self, uc: UseCase) -> UseCaseId {
        let id = UseCaseId::new(self.use_cases.len() as u32);
        self.use_cases.push(uc);
        id
    }

    /// All use-cases in id order.
    pub fn use_cases(&self) -> &[UseCase] {
        &self.use_cases
    }

    /// Number of use-cases.
    pub fn use_case_count(&self) -> usize {
        self.use_cases.len()
    }

    /// Use-case lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn use_case(&self, id: UseCaseId) -> &UseCase {
        &self.use_cases[id.index()]
    }

    /// Ids of all use-cases.
    pub fn use_case_ids(&self) -> impl Iterator<Item = UseCaseId> + '_ {
        (0..self.use_cases.len()).map(|i| UseCaseId::new(i as u32))
    }

    /// The union of cores over all use-cases, sorted by id.
    pub fn cores(&self) -> Vec<CoreId> {
        let set: BTreeSet<CoreId> = self.use_cases.iter().flat_map(|u| u.cores()).collect();
        set.into_iter().collect()
    }

    /// Number of distinct cores.
    pub fn core_count(&self) -> usize {
        self.cores().len()
    }

    /// Total number of flows across all use-cases.
    pub fn total_flow_count(&self) -> usize {
        self.use_cases.iter().map(|u| u.flow_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    #[test]
    fn flow_validation() {
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        assert!(Flow::new(c0, c1, bw(10), Latency::UNCONSTRAINED).is_ok());
        assert!(matches!(
            Flow::new(c0, c0, bw(10), Latency::UNCONSTRAINED),
            Err(SpecError::SelfFlow { .. })
        ));
        assert!(matches!(
            Flow::new(c0, c1, Bandwidth::ZERO, Latency::UNCONSTRAINED),
            Err(SpecError::ZeroBandwidth { .. })
        ));
    }

    #[test]
    fn builder_rejects_duplicate_pairs() {
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        let res = UseCaseBuilder::new("u")
            .flow(c0, c1, bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c0, c1, bw(20), Latency::UNCONSTRAINED);
        assert!(matches!(res, Err(SpecError::DuplicateFlow { .. })));
        // Opposite direction is a different flow.
        let ok = UseCaseBuilder::new("u")
            .flow(c0, c1, bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c1, c0, bw(20), Latency::UNCONSTRAINED);
        assert!(ok.is_ok());
    }

    #[test]
    fn use_case_lookups() {
        let c = |i| CoreId::new(i);
        let uc = UseCaseBuilder::new("figure2a")
            .flow(c(0), c(1), bw(100), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(1), c(2), bw(50), Latency::from_us(3))
            .unwrap()
            .flow(c(2), c(0), bw(200), Latency::UNCONSTRAINED)
            .unwrap()
            .build();
        assert_eq!(uc.flow_count(), 3);
        assert_eq!(
            uc.flow_between(c(1), c(2)).unwrap().latency(),
            Latency::from_us(3)
        );
        assert!(uc.flow_between(c(2), c(1)).is_none());
        assert_eq!(uc.cores().len(), 3);
        assert_eq!(uc.total_bandwidth(), bw(350));
        assert_eq!(uc.max_flow_bandwidth(), bw(200));
        assert_eq!(uc.flow(FlowId::new(2)).bandwidth(), bw(200));
    }

    #[test]
    fn empty_use_case_stats() {
        let uc = UseCaseBuilder::new("empty").build();
        assert_eq!(uc.flow_count(), 0);
        assert_eq!(uc.total_bandwidth(), Bandwidth::ZERO);
        assert_eq!(uc.max_flow_bandwidth(), Bandwidth::ZERO);
        assert!(uc.cores().is_empty());
    }

    #[test]
    fn soc_spec_aggregates() {
        let c = |i| CoreId::new(i);
        let mut soc = SocSpec::new("s");
        let u0 = UseCaseBuilder::new("u0")
            .flow(c(0), c(1), bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .build();
        let u1 = UseCaseBuilder::new("u1")
            .flow(c(1), c(2), bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(2), c(3), bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .build();
        let id0 = soc.add_use_case(u0);
        let id1 = soc.add_use_case(u1);
        assert_eq!(id0.index(), 0);
        assert_eq!(id1.index(), 1);
        assert_eq!(soc.use_case_count(), 2);
        assert_eq!(soc.core_count(), 4);
        assert_eq!(soc.total_flow_count(), 3);
        assert_eq!(soc.cores(), vec![c(0), c(1), c(2), c(3)]);
        let ids: Vec<UseCaseId> = soc.use_case_ids().collect();
        assert_eq!(ids, vec![id0, id1]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", CoreId::new(3)), "core3");
        assert_eq!(format!("{}", UseCaseId::new(2)), "U2");
        assert_eq!(format!("{}", FlowId::new(1)), "f1");
        let f = Flow::new(
            CoreId::new(0),
            CoreId::new(1),
            bw(100),
            Latency::UNCONSTRAINED,
        )
        .unwrap();
        assert_eq!(format!("{f}"), "core0 -> core1 @ 100 MB/s");
    }

    #[test]
    fn use_case_repr_roundtrip_rebuilds_index() {
        let c = |i| CoreId::new(i);
        let uc = UseCaseBuilder::new("u")
            .flow(c(0), c(1), bw(10), Latency::UNCONSTRAINED)
            .unwrap()
            .build();
        // Exercise the serde conversion path directly: the pair index must
        // be rebuilt from the flow list.
        let repr = UseCaseRepr::from(uc.clone());
        let restored = UseCase::from(repr);
        assert_eq!(restored, uc);
        assert_eq!(
            restored.flow_between(c(0), c(1)).unwrap().bandwidth(),
            bw(10)
        );
    }
}
