//! Phase 1 of the methodology: compound-mode generation.
//!
//! "The bandwidth of a flow between two cores in such a compound mode is
//! obtained by summing the bandwidth of the flows between the two cores
//! across the use-cases that comprise the mode and the latency requirement
//! of the flow is taken to be the minimum of the requirements of the flows
//! across the different use-cases in the mode. Such compound modes are then
//! taken as separate use-cases in the design flow." — Section 4.

use std::collections::BTreeMap;

use noc_topology::units::{Bandwidth, Latency};

use crate::spec::{CoreId, Flow, SocSpec, UseCase, UseCaseId};
use crate::SpecError;

/// Synthesizes the compound mode of several use-cases running in parallel.
///
/// Bandwidths of same-endpoint flows add; latency bounds take the minimum.
/// Flows present in only one constituent carry over unchanged.
///
/// ```
/// use noc_usecase::{compound_mode, spec::{CoreId, UseCaseBuilder}};
/// use noc_topology::units::{Bandwidth, Latency};
///
/// # fn main() -> Result<(), noc_usecase::SpecError> {
/// let a = UseCaseBuilder::new("a")
///     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(100), Latency::from_us(8))?
///     .build();
/// let b = UseCaseBuilder::new("b")
///     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(40), Latency::from_us(2))?
///     .build();
/// let ab = compound_mode("a||b", [&a, &b]);
/// let f = ab.flow_between(CoreId::new(0), CoreId::new(1)).unwrap();
/// assert_eq!(f.bandwidth(), Bandwidth::from_mbps(140));
/// assert_eq!(f.latency(), Latency::from_us(2));
/// # Ok(())
/// # }
/// ```
pub fn compound_mode<'a>(
    name: impl Into<String>,
    constituents: impl IntoIterator<Item = &'a UseCase>,
) -> UseCase {
    let mut merged: BTreeMap<(CoreId, CoreId), (Bandwidth, Latency)> = BTreeMap::new();
    for uc in constituents {
        for f in uc.flows() {
            let entry = merged
                .entry(f.endpoints())
                .or_insert((Bandwidth::ZERO, Latency::UNCONSTRAINED));
            entry.0 = entry
                .0
                .checked_add(f.bandwidth())
                .expect("compound-mode bandwidth overflow");
            entry.1 = entry.1.min(f.latency());
        }
    }
    let flows: Vec<Flow> = merged
        .into_iter()
        .map(|((src, dst), (bw, lat))| {
            Flow::new(src, dst, bw, lat).expect("constituent flows are valid")
        })
        .collect();
    UseCase::from_parts(name.into(), flows)
}

/// A declaration that a set of existing use-cases can run in parallel (the
/// `PUC` input of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelSet {
    /// Ids of the use-cases that may run concurrently.
    pub members: Vec<UseCaseId>,
    /// Name for the generated compound use-case.
    pub name: String,
}

impl ParallelSet {
    /// Declares that `members` can run in parallel, naming the compound
    /// mode `name`.
    pub fn new(name: impl Into<String>, members: impl IntoIterator<Item = UseCaseId>) -> Self {
        ParallelSet {
            members: members.into_iter().collect(),
            name: name.into(),
        }
    }
}

/// Expands all declared parallel sets of `soc` into compound-mode
/// use-cases, appending each to the spec, and returns
/// `(compound_id, constituent_ids)` per set — exactly the information
/// phase 2 needs to tie each compound mode to its constituents in the
/// switching graph.
///
/// # Errors
///
/// [`SpecError::UnknownUseCase`] if a set references a use-case id that is
/// not in `soc`.
pub fn expand_parallel_sets(
    soc: &mut SocSpec,
    sets: &[ParallelSet],
) -> Result<Vec<(UseCaseId, Vec<UseCaseId>)>, SpecError> {
    let original_count = soc.use_case_count();
    for set in sets {
        for &m in &set.members {
            if m.index() >= original_count {
                return Err(SpecError::UnknownUseCase {
                    id: m,
                    count: original_count,
                });
            }
        }
    }
    let mut out = Vec::with_capacity(sets.len());
    for set in sets {
        let compound = compound_mode(
            set.name.clone(),
            set.members.iter().map(|&m| soc.use_case(m)),
        );
        let id = soc.add_use_case(compound);
        out.push((id, set.members.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::UseCaseBuilder;

    fn bw(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn c(i: u32) -> CoreId {
        CoreId::new(i)
    }

    fn uc_a() -> UseCase {
        UseCaseBuilder::new("a")
            .flow(c(0), c(1), bw(100), Latency::from_us(8))
            .unwrap()
            .flow(c(1), c(2), bw(50), Latency::UNCONSTRAINED)
            .unwrap()
            .build()
    }

    fn uc_b() -> UseCase {
        UseCaseBuilder::new("b")
            .flow(c(0), c(1), bw(40), Latency::from_us(2))
            .unwrap()
            .flow(c(2), c(3), bw(75), Latency::from_us(1))
            .unwrap()
            .build()
    }

    #[test]
    fn bandwidths_add_latencies_min() {
        let ab = compound_mode("ab", [&uc_a(), &uc_b()]);
        let f01 = ab.flow_between(c(0), c(1)).unwrap();
        assert_eq!(f01.bandwidth(), bw(140));
        assert_eq!(f01.latency(), Latency::from_us(2));
    }

    #[test]
    fn disjoint_flows_carry_over() {
        let ab = compound_mode("ab", [&uc_a(), &uc_b()]);
        assert_eq!(ab.flow_count(), 3);
        assert_eq!(ab.flow_between(c(1), c(2)).unwrap().bandwidth(), bw(50));
        assert_eq!(
            ab.flow_between(c(2), c(3)).unwrap().latency(),
            Latency::from_us(1)
        );
    }

    #[test]
    fn compound_of_one_is_identity_up_to_name() {
        let a = uc_a();
        let solo = compound_mode("solo", [&a]);
        assert_eq!(solo.flow_count(), a.flow_count());
        for f in a.flows() {
            let g = solo.flow_between(f.src(), f.dst()).unwrap();
            assert_eq!(g.bandwidth(), f.bandwidth());
            assert_eq!(g.latency(), f.latency());
        }
    }

    #[test]
    fn three_way_compound() {
        let a = uc_a();
        let b = uc_b();
        let extra = UseCaseBuilder::new("x")
            .flow(c(0), c(1), bw(10), Latency::from_us(9))
            .unwrap()
            .build();
        let all = compound_mode("abx", [&a, &b, &extra]);
        let f = all.flow_between(c(0), c(1)).unwrap();
        assert_eq!(f.bandwidth(), bw(150));
        assert_eq!(f.latency(), Latency::from_us(2));
    }

    #[test]
    fn expand_parallel_sets_appends_compounds() {
        let mut soc = SocSpec::new("s");
        let i_a = soc.add_use_case(uc_a());
        let i_b = soc.add_use_case(uc_b());
        let sets = vec![ParallelSet::new("a||b", [i_a, i_b])];
        let result = expand_parallel_sets(&mut soc, &sets).unwrap();
        assert_eq!(soc.use_case_count(), 3);
        let (compound_id, members) = &result[0];
        assert_eq!(compound_id.index(), 2);
        assert_eq!(members, &vec![i_a, i_b]);
        assert_eq!(soc.use_case(*compound_id).name(), "a||b");
        assert_eq!(
            soc.use_case(*compound_id)
                .flow_between(c(0), c(1))
                .unwrap()
                .bandwidth(),
            bw(140)
        );
    }

    #[test]
    fn expand_rejects_dangling_ids() {
        let mut soc = SocSpec::new("s");
        soc.add_use_case(uc_a());
        let sets = vec![ParallelSet::new("bad", [UseCaseId::new(5)])];
        assert!(matches!(
            expand_parallel_sets(&mut soc, &sets),
            Err(SpecError::UnknownUseCase { .. })
        ));
        // Nothing appended on failure.
        assert_eq!(soc.use_case_count(), 1);
    }

    #[test]
    fn compound_ignores_order() {
        let ab = compound_mode("ab", [&uc_a(), &uc_b()]);
        let ba = compound_mode("ba", [&uc_b(), &uc_a()]);
        for f in ab.flows() {
            let g = ba.flow_between(f.src(), f.dst()).unwrap();
            assert_eq!(f.bandwidth(), g.bandwidth());
            assert_eq!(f.latency(), g.latency());
        }
    }
}
