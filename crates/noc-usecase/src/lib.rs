//! Use-case and traffic-flow specification for multi-use-case SoCs, plus
//! the pre-processing phases of the DATE 2006 methodology:
//!
//! * [`spec`] — cores, flows (bandwidth + latency constraints) and
//!   use-cases (`U1 … Un` in the paper's Figure 3),
//! * [`compound`] — phase 1: synthesizing *compound modes* for use-cases
//!   that run in parallel (bandwidths add, latency constraints take the
//!   minimum),
//! * [`switching`] — phase 2: the switching graph `SG` and Algorithm 1's
//!   grouping of use-cases that must share one NoC configuration.
//!
//! # Example
//!
//! ```
//! use noc_usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
//! use noc_usecase::compound::compound_mode;
//! use noc_topology::units::{Bandwidth, Latency};
//!
//! # fn main() -> Result<(), noc_usecase::SpecError> {
//! // Two use-cases over three cores.
//! let display = UseCaseBuilder::new("display")
//!     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(200), Latency::from_us(10))?
//!     .build();
//! let record = UseCaseBuilder::new("record")
//!     .flow(CoreId::new(0), CoreId::new(1), Bandwidth::from_mbps(50), Latency::from_us(5))?
//!     .flow(CoreId::new(1), CoreId::new(2), Bandwidth::from_mbps(100), Latency::UNCONSTRAINED)?
//!     .build();
//!
//! // Phase 1: display and record can run in parallel.
//! let both = compound_mode("display+record", [&display, &record]);
//! let f = both.flow_between(CoreId::new(0), CoreId::new(1)).unwrap();
//! assert_eq!(f.bandwidth(), Bandwidth::from_mbps(250)); // 200 + 50
//! assert_eq!(f.latency(), Latency::from_us(5));          // min(10us, 5us)
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compound;
pub mod spec;
pub mod switching;
pub mod textio;

mod error;

pub use compound::{compound_mode, expand_parallel_sets, ParallelSet};
pub use error::SpecError;
pub use spec::{CoreId, Flow, FlowId, SocSpec, UseCase, UseCaseBuilder, UseCaseId};
pub use switching::{SwitchingGraph, UseCaseGroups};
pub use textio::{from_text, to_text, ParseSpecError};
