//! Property-based tests of the use-case algebra and the text format.

use noc_topology::units::{Bandwidth, Latency};
use noc_usecase::spec::{CoreId, Flow, SocSpec, UseCaseBuilder};
use noc_usecase::{compound_mode, from_text, to_text, SwitchingGraph};
use proptest::prelude::*;

fn flow_strategy(cores: u32) -> impl Strategy<Value = ((u32, u32), u64, Option<u64>)> {
    (
        (0..cores, 0..cores).prop_filter("distinct", |(a, b)| a != b),
        1u64..2000,
        proptest::option::of(1u64..100_000),
    )
}

fn soc_strategy(cores: u32) -> impl Strategy<Value = SocSpec> {
    proptest::collection::vec(
        proptest::collection::btree_map(
            (0..cores, 0..cores).prop_filter("distinct", |(a, b)| a != b),
            (1u64..2000, proptest::option::of(1u64..100_000)),
            1..12,
        ),
        1..4,
    )
    .prop_map(move |ucs| {
        let mut soc = SocSpec::new("prop");
        for (i, flows) in ucs.into_iter().enumerate() {
            let mut b = UseCaseBuilder::new(format!("u{i}"));
            for ((src, dst), (bw, lat)) in flows {
                b.add_flow(
                    Flow::new(
                        CoreId::new(src),
                        CoreId::new(dst),
                        Bandwidth::from_mbps(bw),
                        lat.map_or(Latency::UNCONSTRAINED, Latency::from_us),
                    )
                    .unwrap(),
                )
                .unwrap();
            }
            soc.add_use_case(b.build());
        }
        soc
    })
}

proptest! {
    /// Text round-trip is the identity on whole-MB/s, whole-µs specs.
    #[test]
    fn text_roundtrip(soc in soc_strategy(10)) {
        let text = to_text(&soc);
        let back = from_text(&text).expect("own output parses");
        prop_assert_eq!(back, soc);
    }

    /// Compounding with an empty use-case is the identity (up to name).
    #[test]
    fn compound_identity(((src, dst), bw, lat) in flow_strategy(6)) {
        let a = UseCaseBuilder::new("a")
            .flow(
                CoreId::new(src),
                CoreId::new(dst),
                Bandwidth::from_mbps(bw),
                lat.map_or(Latency::UNCONSTRAINED, Latency::from_us),
            )
            .unwrap()
            .build();
        let empty = UseCaseBuilder::new("none").build();
        let merged = compound_mode("a+0", [&a, &empty]);
        prop_assert_eq!(merged.flow_count(), 1);
        let f = merged.flows()[0];
        let g = a.flows()[0];
        prop_assert_eq!(f.bandwidth(), g.bandwidth());
        prop_assert_eq!(f.latency(), g.latency());
    }

    /// Compounding is associative on bandwidths.
    #[test]
    fn compound_associative(
        a in soc_strategy(6),
        // Reuse SocSpec strategy as a source of three use-cases.
    ) {
        if a.use_case_count() < 3 {
            return Ok(());
        }
        let (x, y, z) = (&a.use_cases()[0], &a.use_cases()[1], &a.use_cases()[2]);
        let xy = compound_mode("xy", [x, y]);
        let yz = compound_mode("yz", [y, z]);
        let xy_z = compound_mode("xyz", [&xy, z]);
        let x_yz = compound_mode("xyz", [x, &yz]);
        prop_assert_eq!(xy_z.flow_count(), x_yz.flow_count());
        for f in xy_z.flows() {
            let g = x_yz.flow_between(f.src(), f.dst()).expect("same pairs");
            prop_assert_eq!(f.bandwidth(), g.bandwidth());
            prop_assert_eq!(f.latency(), g.latency());
        }
    }

    /// Adding edges to the switching graph only ever merges groups.
    #[test]
    fn edges_monotonically_coarsen(
        n in 2usize..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10), 1..12),
    ) {
        let u = |i: u32| noc_usecase::spec::UseCaseId::new(i % n as u32);
        let mut sg = SwitchingGraph::new(n);
        let mut prev_groups = sg.group().group_count();
        for (a, b) in edges {
            sg.add_smooth_pair(u(a), u(b));
            let now = sg.group().group_count();
            prop_assert!(now <= prev_groups, "edge increased group count");
            prev_groups = now;
        }
        prop_assert!(prev_groups >= 1);
    }
}

#[test]
fn compound_of_many_empties_is_empty() {
    let empties: Vec<_> = (0..5)
        .map(|i| UseCaseBuilder::new(format!("e{i}")).build())
        .collect();
    let merged = compound_mode("all", empties.iter());
    assert_eq!(merged.flow_count(), 0);
}
