//! Umbrella crate: re-exports the full multi-use-case NoC mapping stack.
pub use noc_bench as bench;
pub use noc_benchgen as benchgen;
pub use noc_flow as flow;
pub use noc_obs as obs;
pub use noc_par as par;
pub use noc_service as service;
pub use noc_sim as sim;
pub use noc_tdma as tdma;
pub use noc_topology as topology;
pub use noc_usecase as usecase;
pub use nocmap as map;
