//! The paper notes "the mapping design methodology is applicable to any
//! NoC topology". This test maps a multi-use-case spec onto hand-built
//! non-mesh fabrics (a ring and an irregular dumbbell) through the same
//! `map_multi_usecase` entry point used for meshes.

use noc_multiusecase::map::{map_multi_usecase, MapperOptions};
use noc_multiusecase::sim::{simulate_use_case, SimConfig};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::topology::{Topology, TopologyBuilder};
use noc_multiusecase::usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
use noc_multiusecase::usecase::UseCaseGroups;

/// A unidirectional-pair ring of `n` switches, one NI each.
fn ring(n: u16) -> Topology {
    let mut b = TopologyBuilder::new();
    let switches: Vec<_> = (0..n).map(|i| b.add_switch(i, 0)).collect();
    for i in 0..n as usize {
        b.connect_bidir(switches[i], switches[(i + 1) % n as usize])
            .unwrap();
    }
    for &s in &switches {
        b.add_ni(s).unwrap();
    }
    b.build()
}

/// Two 2-switch clusters joined by a single bridge link pair.
fn dumbbell() -> Topology {
    let mut b = TopologyBuilder::new();
    let s = [
        b.add_switch(0, 0),
        b.add_switch(1, 0),
        b.add_switch(2, 0),
        b.add_switch(3, 0),
    ];
    b.connect_bidir(s[0], s[1]).unwrap();
    b.connect_bidir(s[2], s[3]).unwrap();
    b.connect_bidir(s[1], s[2]).unwrap(); // the bridge
    for &sw in &s {
        b.add_ni(sw).unwrap();
        b.add_ni(sw).unwrap();
    }
    b.build()
}

fn two_use_cases(cores: u32) -> SocSpec {
    let c = CoreId::new;
    let mut soc = SocSpec::new("custom-topo");
    let mut a = UseCaseBuilder::new("a");
    let mut b = UseCaseBuilder::new("b");
    for i in 0..cores {
        a.add_flow(
            noc_multiusecase::usecase::spec::Flow::new(
                c(i),
                c((i + 1) % cores),
                Bandwidth::from_mbps(100),
                Latency::UNCONSTRAINED,
            )
            .unwrap(),
        )
        .unwrap();
        b.add_flow(
            noc_multiusecase::usecase::spec::Flow::new(
                c(i),
                c((i + 2) % cores),
                Bandwidth::from_mbps(60),
                Latency::from_us(20),
            )
            .unwrap(),
        )
        .unwrap();
    }
    soc.add_use_case(a.build());
    soc.add_use_case(b.build());
    soc
}

#[test]
fn maps_onto_a_ring() {
    let topo = ring(6);
    assert!(topo.is_strongly_connected());
    let soc = two_use_cases(6);
    let groups = UseCaseGroups::singletons(2);
    let sol = map_multi_usecase(
        &soc,
        &groups,
        &topo,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
    )
    .expect("ring is routable");
    sol.verify(&soc, &groups).expect("valid on a ring");
    for uc in 0..2 {
        let report = simulate_use_case(&sol, &soc, &groups, uc, &SimConfig::default());
        assert_eq!(report.contention_violations, 0);
        assert!(report.all_flows_delivered());
    }
}

#[test]
fn maps_onto_an_irregular_dumbbell() {
    let topo = dumbbell();
    assert!(topo.is_strongly_connected());
    let soc = two_use_cases(8);
    let groups = UseCaseGroups::singletons(2);
    let sol = map_multi_usecase(
        &soc,
        &groups,
        &topo,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
    )
    .expect("dumbbell is routable");
    sol.verify(&soc, &groups).expect("valid on the dumbbell");
    // The bridge is the only way across: at least one route must use it,
    // and slot accounting on it must stay consistent (verify covers it).
    assert!(sol.connection_count() >= 16);
}

#[test]
fn ring_detour_respects_capacity() {
    // Saturate the clockwise direction: flows large enough that both
    // orientations of the ring must be used.
    let topo = ring(4);
    let c = CoreId::new;
    let mut soc = SocSpec::new("ring-heavy");
    soc.add_use_case(
        UseCaseBuilder::new("heavy")
            .flow(
                c(0),
                c(2),
                Bandwidth::from_mbps(1500),
                Latency::UNCONSTRAINED,
            )
            .unwrap()
            .flow(
                c(1),
                c(3),
                Bandwidth::from_mbps(1500),
                Latency::UNCONSTRAINED,
            )
            .unwrap()
            .build(),
    );
    let groups = UseCaseGroups::singletons(1);
    let sol = map_multi_usecase(
        &soc,
        &groups,
        &topo,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
    )
    .expect("two opposite heavy flows fit a 4-ring");
    sol.verify(&soc, &groups).expect("valid");
}
