//! Traffic-model regression tests: seeded bursty scenarios must be
//! byte-identical at every thread count, and the constant-rate default
//! must reproduce the pre-traffic-subsystem engine behaviour exactly
//! (golden values captured from the seed-2006 pipeline before
//! `TrafficModel` existed).

use noc_multiusecase::bench::{be_burst, format_be_burst};
use noc_multiusecase::benchgen::{chained_chain, SpreadConfig};
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::par::with_threads;
use noc_multiusecase::sim::{
    simulate_group, simulate_mixed, BestEffortFlow, SimConfig, TrafficModel,
};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::UseCaseGroups;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The `be_burst` sweep — parallel over its points via `noc-par` — must
/// render byte-identical tables at 1, 2, and 8 workers (the acceptance
/// bar for `experiments -- be_burst` under `NOC_PAR_THREADS`).
#[test]
fn be_burst_table_identical_across_thread_counts() {
    let base = with_threads(1, || format_be_burst(&be_burst()));
    assert!(base.contains("mmpp-1/8"), "sweep must cover seeded bursts");
    for threads in THREAD_COUNTS {
        let table = with_threads(threads, || format_be_burst(&be_burst()));
        assert_eq!(table, base, "be_burst table differs at {threads} threads");
    }
}

/// A seeded random-burst mixed scenario is a pure function of
/// `(seed, flow order)`: full `MixedReport`s compare equal across
/// repeated runs at every thread count.
#[test]
fn seeded_bursty_scenario_reports_identical_across_thread_counts() {
    let run = || {
        let spec = TdmaSpec::paper_default();
        let (_, routes) = chained_chain(4, 3);
        let be: Vec<BestEffortFlow> = routes
            .iter()
            .map(|r| BestEffortFlow {
                key: (r.src, r.dst),
                path: r.path.clone(),
                inject_bandwidth: noc_multiusecase::topology::units::Bandwidth::from_mbps(300),
                traffic: TrafficModel::RandomBursts {
                    mean_on: 16,
                    mean_off: 48,
                    seed: 2006,
                },
            })
            .collect();
        simulate_mixed(&spec, &[], &be, 8192)
    };
    let base = with_threads(1, run);
    assert!(base.best_effort.values().any(|s| s.injected_words > 0));
    for threads in THREAD_COUNTS {
        assert_eq!(
            with_threads(threads, run),
            base,
            "seeded scenario differs at {threads} threads"
        );
    }
}

/// The constant-rate default reproduces the engine's pre-`TrafficModel`
/// arithmetic bit-for-bit: golden aggregates of the seed-2006 Sp-2
/// group-0 replay, captured on the engine before this subsystem landed.
#[test]
fn constant_rate_default_matches_pre_traffic_golden_report() {
    let soc = SpreadConfig::paper(2).generate(2006);
    let groups = UseCaseGroups::singletons(2);
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        400,
    )
    .expect("seed-2006 benchmark maps");
    let report = simulate_group(
        &sol,
        0,
        &SimConfig {
            cycles: 4096,
            queueing_slack_tables: 1,
        },
    );
    assert_eq!(report.contention_violations, 0);
    assert_eq!(report.latency_violations, 0);
    assert_eq!(report.flows.len(), 94);
    let (mut injected, mut delivered, mut lat_total, mut lat_max) = (0u64, 0u64, 0u64, 0u64);
    for stats in report.flows.values() {
        injected += stats.injected_words;
        delivered += stats.delivered_words;
        lat_total += stats.total_latency_cycles;
        lat_max = lat_max.max(stats.max_latency_cycles);
    }
    assert_eq!(injected, 3234, "golden injected-word count");
    assert_eq!(delivered, 3192, "golden delivered-word count");
    assert_eq!(lat_total, 84099, "golden total latency");
    assert_eq!(lat_max, 131, "golden max latency");
    let first = report
        .flows
        .iter()
        .next()
        .expect("group 0 has flows")
        .1
        .clone();
    assert_eq!(first.injected_words, 352);
    assert_eq!(first.delivered_words, 352);
    assert_eq!(first.max_latency_cycles, 12);
    assert_eq!(first.total_latency_cycles, 2420);
    assert_eq!(first.backlog_words, 0);
}

/// An explicit `TrafficModel::Constant` and the `..Default::default()`
/// model are the same source — the API contract that lets callers omit
/// the field's value everywhere.
#[test]
fn default_traffic_model_is_constant() {
    assert_eq!(TrafficModel::default(), TrafficModel::Constant);
}
