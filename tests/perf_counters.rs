//! Op-counter regression tests for the allocation-free hot loops.
//!
//! The counters (`nocmap::perf`) are process-global, so this file keeps
//! everything inside **one** test function (integration-test files are
//! separate binaries, and a single `#[test]` cannot race itself): exact
//! deltas stay exact.
//!
//! What is pinned here:
//!
//! * the annealer performs **no full re-route per move** — `full_maps`
//!   rises by exactly 1 (the initial sanity pass) no matter how many
//!   moves the walk proposes;
//! * delta evaluation **skips use-case groups untouched by a move**
//!   (`groups_reused > 0` on a spec with disjoint-core use-cases);
//! * path queries run against **re-used scratch buffers** — one
//!   allocation per group per map, not one per query;
//! * the route cache is **pay-for-use**: plain `refine` leaves both
//!   `route_cache_*` counters at zero, while `refine_cached` records
//!   hits on revisited placement signatures, saves their re-routes, and
//!   still returns the byte-identical winner;
//! * all of those counts are **identical at any thread count**.

use noc_multiusecase::map::anneal::{refine, refine_cached, AnnealConfig};
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::{perf, MapperOptions};
use noc_multiusecase::par::with_threads;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
use noc_multiusecase::usecase::UseCaseGroups;

/// Two use-cases over **disjoint** core sets: a swap touching only one
/// side must leave the other group's configuration spliced, not
/// re-routed.
fn disjoint_soc() -> SocSpec {
    let c = CoreId::new;
    let bw = Bandwidth::from_mbps;
    let mut soc = SocSpec::new("disjoint");
    soc.add_use_case(
        UseCaseBuilder::new("u0")
            .flow(c(0), c(1), bw(400), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(2), c(3), bw(300), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(1), c(2), bw(50), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    soc.add_use_case(
        UseCaseBuilder::new("u1")
            .flow(c(4), c(5), bw(400), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(6), c(7), bw(300), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(5), c(6), bw(50), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    soc
}

#[test]
fn hot_loops_are_delta_evaluated_and_allocation_free() {
    let soc = disjoint_soc();
    let groups = UseCaseGroups::singletons(2);
    let opts = MapperOptions::default();

    // -- Mapping: one scratch per group, not one per path query. -------
    let before = perf::snapshot();
    let initial = design_smallest_mesh(&soc, &groups, TdmaSpec::paper_default(), &opts, 64)
        .expect("tiny spec maps");
    let map_delta = perf::snapshot().since(&before);
    assert!(
        map_delta.path_queries > map_delta.scratch_allocs,
        "queries ({}) must outnumber scratch allocations ({})",
        map_delta.path_queries,
        map_delta.scratch_allocs
    );
    assert_eq!(
        map_delta.path_queries, map_delta.group_routes,
        "the smallest-mesh search retries every failed path at most once per \
         (pair, group) attempt — each routing attempt is one query here"
    );

    // -- Annealing: delta evaluation, rollback in place. ---------------
    let cfg = AnnealConfig {
        iterations: 40,
        chains: 1,
        seed: 2006,
        ..Default::default()
    };
    let run_refine = || {
        let before = perf::snapshot();
        let refined = refine(&soc, &groups, &opts, &initial, &cfg).expect("refine succeeds");
        (perf::snapshot().since(&before), refined)
    };
    let (delta, refined) = run_refine();
    assert!(refined.comm_cost() <= initial.comm_cost());
    assert_eq!(
        delta.full_maps, 1,
        "exactly one full re-route (the initial sanity pass) regardless of \
         {} proposed moves — the walk itself must never full-map",
        delta.anneal_moves
    );
    assert!(delta.anneal_moves > 0, "the walk must propose moves");
    assert_eq!(
        delta.groups_rerouted + delta.groups_reused,
        2 * delta.anneal_moves,
        "every evaluated move accounts for both groups, re-routed or spliced"
    );
    assert!(
        delta.groups_reused > 0,
        "disjoint-core use-cases: moves inside one group must splice the \
         other ({} rerouted, {} reused)",
        delta.groups_rerouted,
        delta.groups_reused
    );

    // -- Route cache: pay-for-use, byte-identical walk. ----------------
    assert_eq!(
        (delta.route_cache_hits, delta.route_cache_misses),
        (0, 0),
        "plain refine must never touch the route cache"
    );
    let run_cached = || {
        let before = perf::snapshot();
        let refined =
            refine_cached(&soc, &groups, &opts, &initial, &cfg).expect("refine_cached succeeds");
        (perf::snapshot().since(&before), refined)
    };
    let (cached, cached_sol) = run_cached();
    assert_eq!(
        cached_sol, refined,
        "the cache must not change the walk's winner"
    );
    assert_eq!(
        (cached.anneal_moves, cached.anneal_accepts),
        (delta.anneal_moves, delta.anneal_accepts),
        "the cache must not change the walk itself"
    );
    assert!(
        cached.route_cache_hits > 0,
        "a 40-iteration walk over two groups must revisit placement signatures"
    );
    assert!(
        cached.route_cache_misses > 0,
        "fresh placement signatures must be routed (and recorded) as misses"
    );
    assert!(
        cached.group_routes < delta.group_routes,
        "every cache hit must save a group re-route ({} cached vs {} uncached)",
        cached.group_routes,
        delta.group_routes
    );

    // -- Determinism: identical op counts at any thread count. ---------
    let (seq, seq_sol) = with_threads(1, run_refine);
    let (par, par_sol) = with_threads(4, run_refine);
    assert_eq!(seq_sol, par_sol, "thread count must not change the walk");
    assert_eq!(seq, par, "op counters must be schedule-independent");
    let (cached_seq, cached_seq_sol) = with_threads(1, run_cached);
    let (cached_par, cached_par_sol) = with_threads(4, run_cached);
    assert_eq!(cached_seq_sol, cached_par_sol);
    assert_eq!(
        cached_seq, cached_par,
        "cache hit/miss counts must be schedule-independent"
    );
}
