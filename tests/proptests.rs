//! Property-based tests over the whole stack: specification algebra,
//! grouping, TDMA reservation and the mapper's output contract.

use std::collections::BTreeSet;

use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::wc::worst_case_use_case;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::sim::{simulate_use_case, SimConfig};
use noc_multiusecase::tdma::{ConnId, NetworkSlots, SlotPolicy, TdmaSpec};
use noc_multiusecase::topology::units::{Bandwidth, Frequency, Latency, LinkWidth};
use noc_multiusecase::topology::{LinkId, MeshBuilder};
use noc_multiusecase::usecase::spec::{CoreId, Flow, SocSpec, UseCase, UseCaseBuilder};
use noc_multiusecase::usecase::{compound_mode, SwitchingGraph, UseCaseGroups};
use proptest::prelude::*;

/// Strategy: a use-case over `cores` cores with 1..=max_flows random
/// flows (distinct pairs, bandwidths in MB/s).
fn use_case_strategy(cores: u32, max_flows: usize) -> impl Strategy<Value = UseCase> {
    let pair = (0..cores, 0..cores).prop_filter("no self flows", |(a, b)| a != b);
    proptest::collection::btree_set(pair, 1..=max_flows).prop_flat_map(move |pairs| {
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(1u64..800, n),
            proptest::collection::vec(proptest::option::of(1u64..1000u64), n),
        )
            .prop_map(|(pairs, bws, lats)| {
                let mut b = UseCaseBuilder::new("prop");
                for (((src, dst), bw), lat) in pairs.into_iter().zip(bws).zip(lats) {
                    let latency = lat.map_or(Latency::UNCONSTRAINED, Latency::from_us);
                    b.add_flow(
                        Flow::new(
                            CoreId::new(src),
                            CoreId::new(dst),
                            Bandwidth::from_mbps(bw),
                            latency,
                        )
                        .expect("strategy yields valid flows"),
                    )
                    .expect("btree_set pairs are distinct");
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compound bandwidth is the sum over constituents, latency the min.
    #[test]
    fn compound_mode_arithmetic(
        a in use_case_strategy(6, 10),
        b in use_case_strategy(6, 10),
    ) {
        let ab = compound_mode("ab", [&a, &b]);
        let pairs: BTreeSet<_> = a
            .flows()
            .iter()
            .chain(b.flows())
            .map(|f| f.endpoints())
            .collect();
        prop_assert_eq!(ab.flow_count(), pairs.len());
        for (src, dst) in pairs {
            let fa = a.flow_between(src, dst);
            let fb = b.flow_between(src, dst);
            let expect_bw = fa.map_or(Bandwidth::ZERO, |f| f.bandwidth())
                + fb.map_or(Bandwidth::ZERO, |f| f.bandwidth());
            let expect_lat = fa
                .map_or(Latency::UNCONSTRAINED, |f| f.latency())
                .min(fb.map_or(Latency::UNCONSTRAINED, |f| f.latency()));
            let got = ab.flow_between(src, dst).expect("pair present");
            prop_assert_eq!(got.bandwidth(), expect_bw);
            prop_assert_eq!(got.latency(), expect_lat);
        }
    }

    /// Compounding is order-insensitive.
    #[test]
    fn compound_mode_commutes(
        a in use_case_strategy(5, 8),
        b in use_case_strategy(5, 8),
    ) {
        let ab = compound_mode("ab", [&a, &b]);
        let ba = compound_mode("ba", [&b, &a]);
        prop_assert_eq!(ab.flow_count(), ba.flow_count());
        for f in ab.flows() {
            let g = ba.flow_between(f.src(), f.dst()).expect("same pairs");
            prop_assert_eq!(f.bandwidth(), g.bandwidth());
            prop_assert_eq!(f.latency(), g.latency());
        }
    }

    /// The worst-case use-case dominates every member flow.
    #[test]
    fn worst_case_dominates_members(
        ucs in proptest::collection::vec(use_case_strategy(6, 8), 1..4),
    ) {
        let mut soc = SocSpec::new("prop");
        for uc in ucs {
            soc.add_use_case(uc);
        }
        let wc = worst_case_use_case(&soc);
        for uc in soc.use_cases() {
            for f in uc.flows() {
                let w = wc.flow_between(f.src(), f.dst()).expect("pair in union");
                prop_assert!(w.bandwidth() >= f.bandwidth());
                prop_assert!(w.latency() <= f.latency());
            }
        }
    }

    /// Algorithm 1 produces a partition where connectivity == same group.
    #[test]
    fn grouping_is_connectivity_partition(
        n in 1usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..20),
    ) {
        let mut sg = SwitchingGraph::new(n);
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        for (a, b) in edges {
            let (a, b) = (a as usize % n, b as usize % n);
            sg.add_smooth_pair(
                noc_multiusecase::usecase::spec::UseCaseId::new(a as u32),
                noc_multiusecase::usecase::spec::UseCaseId::new(b as u32),
            );
            let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
            dsu[ra] = rb;
        }
        let groups = sg.group();
        // Partition: every vertex in exactly one group.
        let mut seen = vec![0u8; n];
        for g in groups.groups() {
            for m in g {
                seen[m.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // Same group <=> same union-find root.
        for i in 0..n {
            for j in 0..n {
                let same_dsu = find(&mut dsu, i) == find(&mut dsu, j);
                let same_grp = groups.same_group(
                    noc_multiusecase::usecase::spec::UseCaseId::new(i as u32),
                    noc_multiusecase::usecase::spec::UseCaseId::new(j as u32),
                );
                prop_assert_eq!(same_dsu, same_grp, "vertices {} and {}", i, j);
            }
        }
    }

    /// TDMA reservations never double-book and releases restore state.
    #[test]
    fn tdma_reserve_release_invariants(
        reservations in proptest::collection::vec(
            (0usize..6, 1usize..4), 1..10,
        ),
    ) {
        let mesh = MeshBuilder::new(2, 3).nis_per_switch(1).build().unwrap();
        let topo = mesh.into_topology();
        let spec = TdmaSpec::new(16, Frequency::from_mhz(500), LinkWidth::BITS_32);
        let mut slots = NetworkSlots::new(&topo, &spec);
        let pristine = slots.clone();
        let nis = topo.nis().to_vec();

        // Deterministic path per (src_ni, length-ish): walk from the NI
        // through its switch toward increasing switch ids.
        let make_path = |start: usize| -> Vec<LinkId> {
            let ni = nis[start % nis.len()];
            let sw = topo.ni_switch(ni).unwrap();
            let mut path = vec![topo.link_between(ni, sw).unwrap()];
            let mut cur = sw;
            for &l in topo.outgoing(cur) {
                let next = topo.link(l).dst();
                if topo.node(next).is_switch() {
                    path.push(l);
                    cur = next;
                    break;
                }
            }
            let back_ni = topo
                .outgoing(cur)
                .iter()
                .map(|&l| topo.link(l).dst())
                .find(|&m| topo.node(m).is_ni())
                .unwrap();
            path.push(topo.link_between(cur, back_ni).unwrap());
            path
        };

        let mut committed: Vec<(Vec<LinkId>, Vec<usize>, ConnId)> = Vec::new();
        for (i, (start, want)) in reservations.into_iter().enumerate() {
            let path = make_path(start);
            let conn = ConnId::new(i as u64);
            if let Some(base) = slots.find_base_slots(&path, want, SlotPolicy::Spread) {
                slots.reserve(&path, &base, conn).expect("found slots must reserve");
                committed.push((path, base, conn));
            }
        }
        // Occupancy equals the sum of committed reservations.
        let used: usize = topo
            .links()
            .iter()
            .map(|l| 16 - slots.free_slot_count(l.id()))
            .sum();
        let expected: usize = committed.iter().map(|(p, b, _)| p.len() * b.len()).sum();
        prop_assert_eq!(used, expected);
        // Releasing everything restores the pristine state.
        for (path, base, conn) in committed.into_iter().rev() {
            slots.release(&path, &base, conn).expect("release own slots");
        }
        prop_assert_eq!(slots, pristine);
    }

    /// The mapper contract holds for slot tables that cross u64 word
    /// boundaries: `S = 130` needs three words per bit-packed link mask
    /// (`130 > 2 × 64`), so every wheel wrap, occupancy fold and
    /// reservation in the mapper path exercises multi-word arithmetic.
    /// The solution must still verify, re-map deterministically, and keep
    /// every reserved base slot inside the wheel.
    #[test]
    fn mapper_output_contract_with_multiword_slot_tables(
        ucs in proptest::collection::vec(use_case_strategy(5, 6), 1..3),
    ) {
        let mut soc = SocSpec::new("prop");
        for uc in ucs {
            soc.add_use_case(uc);
        }
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let spec = TdmaSpec::new(130, Frequency::from_mhz(500), LinkWidth::BITS_32);
        let opts = MapperOptions::default();
        if let Ok(sol) = design_smallest_mesh(&soc, &groups, spec, &opts, 16) {
            prop_assert!(sol.verify(&soc, &groups).is_ok());
            let again = design_smallest_mesh(&soc, &groups, spec, &opts, 16)
                .expect("determinism: feasible stays feasible");
            prop_assert_eq!(&sol, &again);
            for config in sol.group_configs() {
                for (_, route) in config.iter() {
                    for &base in &route.base_slots {
                        prop_assert!(base < 130, "base slot {} outside the wheel", base);
                    }
                }
            }
        }
    }

    /// Any random small SoC the mapper accepts yields a verifiable,
    /// simulation-clean, deterministic solution.
    #[test]
    fn mapper_output_contract(
        ucs in proptest::collection::vec(use_case_strategy(5, 6), 1..3),
    ) {
        let mut soc = SocSpec::new("prop");
        for uc in ucs {
            soc.add_use_case(uc);
        }
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let spec = TdmaSpec::paper_default();
        let opts = MapperOptions::default();
        if let Ok(sol) = design_smallest_mesh(&soc, &groups, spec, &opts, 16) {
            prop_assert!(sol.verify(&soc, &groups).is_ok());
            let again = design_smallest_mesh(&soc, &groups, spec, &opts, 16)
                .expect("determinism: feasible stays feasible");
            prop_assert_eq!(&sol, &again);
            for uc in 0..soc.use_case_count() {
                let report = simulate_use_case(
                    &sol,
                    &soc,
                    &groups,
                    uc,
                    &SimConfig { cycles: 1024, ..Default::default() },
                );
                prop_assert_eq!(report.contention_violations, 0);
                prop_assert_eq!(report.latency_violations, 0);
            }
        }
    }
}
