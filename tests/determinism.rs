//! Deterministic-regression tests: a fixed RNG seed through the
//! benchmark generator and the mapper must produce bit-identical
//! results on every run, and the headline numbers for the pinned seed
//! are golden values that future refactors must preserve (or
//! consciously update alongside an explanation).

use noc_multiusecase::benchgen::{BottleneckConfig, SpreadConfig};
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::{MapperOptions, MappingSolution};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::spec::SocSpec;
use noc_multiusecase::usecase::UseCaseGroups;

const SEED: u64 = 2006;
const MAX_SWITCHES: usize = 400;

fn design(soc: &SocSpec) -> MappingSolution {
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    design_smallest_mesh(
        soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        MAX_SWITCHES,
    )
    .expect("pinned-seed benchmarks are feasible")
}

#[test]
fn same_seed_same_solution_across_runs() {
    let generators: [fn() -> SocSpec; 2] = [
        || SpreadConfig::paper(4).generate(SEED),
        || BottleneckConfig::paper(4).generate(SEED),
    ];
    for gen_soc in generators {
        let soc = gen_soc();
        assert_eq!(
            soc,
            gen_soc(),
            "generator must be a pure function of the seed"
        );
        assert_eq!(
            design(&soc),
            design(&soc),
            "mapper must be deterministic for a fixed spec"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = SpreadConfig::paper(4).generate(SEED);
    let b = SpreadConfig::paper(4).generate(SEED + 1);
    assert_ne!(a, b, "seed must actually drive the generator");
}

/// Golden values for seed 2006. If an intentional change to the
/// generator or mapper shifts these, re-pin them in the same commit
/// and say why in its message.
///
/// Communication costs are pinned in their exact integer form
/// (bytes/s·hops): since `comm_cost` accumulates in integers, the value
/// cannot drift with summation order, so these goldens hold at every
/// `NOC_PAR_THREADS` setting (see `tests/parallel_determinism.rs`).
#[test]
fn pinned_seed_golden_values() {
    let sp = design(&SpreadConfig::paper(4).generate(SEED));
    assert_eq!(sp.switch_count(), 4);
    assert_eq!(sp.connection_count(), 352);
    assert_eq!(sp.mean_hops(), 3.0113636363636362);
    assert_eq!(sp.comm_cost_bytes_hops(), 12_277_501_412);
    assert_eq!(sp.comm_cost(), 12_277_501_412u64 as f64 / 1e6);

    let bot = design(&BottleneckConfig::paper(4).generate(SEED));
    assert_eq!(bot.switch_count(), 4);
    assert_eq!(bot.connection_count(), 312);
    assert_eq!(bot.mean_hops(), 3.0384615384615383);
    assert_eq!(bot.comm_cost_bytes_hops(), 21_249_120_246);
    assert_eq!(bot.comm_cost(), 21_249_120_246u64 as f64 / 1e6);
}
