//! The shipped spec files parse, design, and match the paper's figures.

use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::Bandwidth;
use noc_multiusecase::usecase::spec::CoreId;
use noc_multiusecase::usecase::{from_text, to_text, UseCaseGroups};

#[test]
fn figure2_spec_parses_and_matches_the_paper() {
    let text = include_str!("../specs/figure2.spec");
    let soc = from_text(text).expect("shipped spec parses");
    assert_eq!(soc.name(), "figure2");
    assert_eq!(soc.use_case_count(), 2);
    assert_eq!(soc.core_count(), 7);

    // Spot-check the numbers printed in Figure 2.
    let uc1 = &soc.use_cases()[0];
    let uc2 = &soc.use_cases()[1];
    let f = |uc: &noc_multiusecase::usecase::spec::UseCase, s: u32, d: u32| {
        uc.flow_between(CoreId::new(s), CoreId::new(d))
            .unwrap_or_else(|| panic!("missing flow {s} -> {d}"))
            .bandwidth()
    };
    assert_eq!(f(uc1, 2, 5), Bandwidth::from_mbps(200)); // filter2 -> mem2, UC1
    assert_eq!(f(uc2, 2, 5), Bandwidth::from_mbps(50)); // same pair, UC2
    assert_eq!(f(uc1, 5, 3), Bandwidth::from_mbps(150));
    assert_eq!(f(uc2, 5, 3), Bandwidth::from_mbps(200));
    assert_eq!(uc1.flow_count(), 7);
    assert_eq!(uc2.flow_count(), 8);
}

#[test]
fn figure2_designs_onto_one_switch() {
    let soc = from_text(include_str!("../specs/figure2.spec")).unwrap();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        16,
    )
    .expect("the Figure 2 fragment is tiny");
    sol.verify(&soc, &groups).unwrap();
    assert_eq!(
        sol.switch_count(),
        1,
        "7 cores at these rates fit one switch"
    );
}

#[test]
fn figure2_spec_roundtrips() {
    let soc = from_text(include_str!("../specs/figure2.spec")).unwrap();
    let back = from_text(&to_text(&soc)).unwrap();
    assert_eq!(back, soc);
}
