//! Determinism contract of the online mapping service (`nocd`).
//!
//! The in-process replay transcript is specified to be a pure function
//! of `(config, requests, seed)` — byte-identical at any `noc-par`
//! worker count (see `docs/SERVICE.md`). This test drives the standard
//! 200-request seed-2006 trace through a fresh engine at 1, 2, and 8
//! workers and byte-compares every transcript against the pinned golden
//! (`tests/goldens/service_replay.txt`, captured from
//! `nocmap_cli replay --transcript` at the default engine
//! configuration). The golden pins the full request/response stream
//! *and* the final admission report — any drift in admission decisions,
//! displacement choices, batching, or report formatting fails the
//! byte-compare.

use noc_multiusecase::par::with_threads;
use noc_multiusecase::service::{replay, EngineConfig};

const GOLDEN: &str = include_str!("goldens/service_replay.txt");
const REQUESTS: u64 = 200;
const SEED: u64 = 2006;

#[test]
fn replay_transcript_is_byte_identical_at_any_worker_count() {
    for workers in [1usize, 2, 8] {
        let out = with_threads(workers, || {
            replay(EngineConfig::default(), REQUESTS, SEED).expect("default config is valid")
        });
        assert_eq!(
            out.transcript, GOLDEN,
            "replay transcript diverged from the golden at {workers} workers"
        );
        // The final report in the transcript and the struct agree.
        assert_eq!(out.stats.admitted, 89, "{:?}", out.stats);
        assert_eq!(out.stats.rejected, 29, "{:?}", out.stats);
        assert!(
            out.transcript
                .contains("admitted=89 rejected=29 blocking=0.2458"),
            "admission report drifted"
        );
    }
}
