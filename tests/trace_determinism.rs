//! Op-clock trace determinism: the `be_burst` flow spec produces a
//! **byte-identical** op-mode trace at 1, 2, and 4 `noc-par` workers,
//! and that trace matches the committed golden
//! (`tests/goldens/be_burst_trace.txt`).
//!
//! This is the `noc-obs` acceptance bar: span nesting, lane splicing,
//! span-id assignment, op-clock costs, and both exporters must all be
//! schedule-independent. The wall-clock fields are zeroed in ops mode,
//! so the whole document — not just selected fields — can be compared.
//!
//! The collector is process-global, so this file holds exactly one
//! `#[test]` (the sequential install/finish pairs inside it are fine;
//! a *concurrent* second installer would be refused).

use noc_multiusecase::flow::config::{spec_from_text, SpecFile};
use noc_multiusecase::flow::run_spec;
use noc_multiusecase::{obs, par};

/// Runs `specs/flow_be_burst.flow` under an op-mode collector at the
/// given worker count and returns both renderings of the trace.
fn traced_run(threads: usize) -> (String, String) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/flow_be_burst.flow");
    let text = std::fs::read_to_string(path).expect("spec file is committed");
    let SpecFile::Experiment(spec) = spec_from_text(&text).expect("spec parses") else {
        panic!("flow_be_burst.flow declares an experiment spec");
    };
    assert!(
        obs::install(obs::TraceMode::Ops),
        "no other collector may be active in this test binary"
    );
    par::with_threads(threads, || run_spec(&spec).expect("be_burst runs"));
    let trace = obs::finish().expect("finish on the installing thread");
    (trace.render_text(), trace.to_chrome_json())
}

#[test]
fn op_clock_trace_is_byte_identical_at_any_thread_count() {
    let (text1, json1) = traced_run(1);
    let (text2, json2) = traced_run(2);
    let (text4, json4) = traced_run(4);
    assert_eq!(text1, text2, "text trace diverged between 1 and 2 workers");
    assert_eq!(text1, text4, "text trace diverged between 1 and 4 workers");
    assert_eq!(json1, json2, "JSON trace diverged between 1 and 2 workers");
    assert_eq!(json1, json4, "JSON trace diverged between 1 and 4 workers");

    let golden = include_str!("goldens/be_burst_trace.txt");
    assert_eq!(
        text1, golden,
        "op-mode trace diverged from tests/goldens/be_burst_trace.txt \
         (if the instrumentation changed intentionally, regenerate the \
         golden: nocmap_cli flow run specs/flow_be_burst.flow --trace \
         tests/goldens/be_burst_trace.txt --trace-mode ops)"
    );
}
