//! Integration tests of the full three-phase methodology: compound-mode
//! generation (phase 1) → switching-graph grouping (phase 2) → unified
//! mapping (phase 3), including the smooth-switching guarantees.

use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::usecase::spec::{CoreId, SocSpec, UseCaseBuilder, UseCaseId};
use noc_multiusecase::usecase::{expand_parallel_sets, ParallelSet, SwitchingGraph};

fn c(i: u32) -> CoreId {
    CoreId::new(i)
}

fn u(i: u32) -> UseCaseId {
    UseCaseId::new(i)
}

fn bw(m: u64) -> Bandwidth {
    Bandwidth::from_mbps(m)
}

/// Three hand-written use-cases over 6 cores.
fn base_soc() -> SocSpec {
    let mut soc = SocSpec::new("methodology");
    soc.add_use_case(
        UseCaseBuilder::new("display")
            .flow(c(0), c(1), bw(300), Latency::UNCONSTRAINED)
            .unwrap()
            .flow(c(1), c(2), bw(200), Latency::from_us(5))
            .unwrap()
            .build(),
    );
    soc.add_use_case(
        UseCaseBuilder::new("record")
            .flow(c(0), c(1), bw(150), Latency::from_us(2))
            .unwrap()
            .flow(c(3), c(4), bw(100), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    soc.add_use_case(
        UseCaseBuilder::new("browse")
            .flow(c(4), c(5), bw(50), Latency::UNCONSTRAINED)
            .unwrap()
            .build(),
    );
    soc
}

#[test]
fn full_three_phase_pipeline() {
    let mut soc = base_soc();

    // Phase 1: display and record can run in parallel.
    let sets = vec![ParallelSet::new("display+record", [u(0), u(1)])];
    let compounds = expand_parallel_sets(&mut soc, &sets).expect("ids valid");
    assert_eq!(soc.use_case_count(), 4);
    let (compound_id, members) = compounds[0].clone();

    // Compound arithmetic: shared pair (0,1) sums bandwidth, takes min
    // latency; disjoint pairs carry over.
    let compound = soc.use_case(compound_id);
    let f01 = compound
        .flow_between(c(0), c(1))
        .expect("shared pair present");
    assert_eq!(f01.bandwidth(), bw(450));
    assert_eq!(f01.latency(), Latency::from_us(2));
    assert_eq!(compound.flow_count(), 3);

    // Phase 2: compound ties its members into one group; browse stays
    // free to reconfigure.
    let mut sg = SwitchingGraph::new(soc.use_case_count());
    sg.add_compound(compound_id, &members);
    let groups = sg.group();
    assert_eq!(groups.group_count(), 2);
    assert!(groups.same_group(u(0), u(1)));
    assert!(groups.same_group(u(0), compound_id));
    assert!(!groups.same_group(u(0), u(2)));

    // Phase 3: unified mapping.
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        64,
    )
    .expect("feasible");
    sol.verify(&soc, &groups).expect("valid");

    // Smooth-switching guarantee: display, record and the compound see
    // the *same* route object for their shared pair.
    let g = groups.group_of(u(0));
    let shared = sol.group_config(g).route(c(0), c(1)).expect("configured");
    for uc in [u(0), u(1), compound_id] {
        let r = sol.route_for(&groups, uc, c(0), c(1)).expect("route");
        assert_eq!(r, shared, "group members must share the configuration");
    }
    // The shared reservation is sized for the compound (the largest
    // same-pair demand in the group).
    assert_eq!(shared.bandwidth, bw(450));
}

#[test]
fn grouping_never_reduces_noc_size() {
    // Forcing use-cases to share a configuration can only cost switches.
    let soc = base_soc();
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let free = noc_multiusecase::usecase::UseCaseGroups::singletons(3);
    let frozen = noc_multiusecase::usecase::UseCaseGroups::single_group(3);
    let a = design_smallest_mesh(&soc, &free, spec, &opts, 64).expect("free feasible");
    let b = design_smallest_mesh(&soc, &frozen, spec, &opts, 64).expect("frozen feasible");
    assert!(a.switch_count() <= b.switch_count());
}

#[test]
fn compound_mode_requires_more_resources_than_members() {
    // The compound's demand dominates each member's demand pair-wise.
    let mut soc = base_soc();
    let sets = vec![ParallelSet::new("all3", [u(0), u(1), u(2)])];
    let compounds = expand_parallel_sets(&mut soc, &sets).expect("ids valid");
    let compound = soc.use_case(compounds[0].0);
    for member in [u(0), u(1), u(2)] {
        for flow in soc.use_case(member).flows() {
            let cf = compound
                .flow_between(flow.src(), flow.dst())
                .expect("member pair present in compound");
            assert!(cf.bandwidth() >= flow.bandwidth());
            assert!(cf.latency() <= flow.latency());
        }
    }
    assert!(compound.total_bandwidth() >= soc.use_case(u(0)).total_bandwidth());
}

#[test]
fn dangling_parallel_set_is_rejected_atomically() {
    let mut soc = base_soc();
    let sets = vec![
        ParallelSet::new("ok", [u(0), u(1)]),
        ParallelSet::new("dangling", [u(0), u(9)]),
    ];
    let err = expand_parallel_sets(&mut soc, &sets);
    assert!(err.is_err());
    assert_eq!(soc.use_case_count(), 3, "no partial expansion on error");
}
