//! Parallel-determinism regression tests: the whole design pipeline must
//! produce **byte-identical** output at every `noc-par` thread count.
//!
//! The contract (see `crates/noc-par`): parallel regions reduce results
//! in input order, per-unit RNG seeds are derived deterministically, and
//! order-sensitive f64 accumulation is banned from compared quantities
//! (`comm_cost` accumulates in integers). These tests run the seed-2006
//! golden pipeline of `tests/determinism.rs` at 1, 2, and 8 workers and
//! compare full solutions, analytic reports, and emitted configuration
//! artifacts byte for byte.
//!
//! Thread counts are pinned with [`noc_par::with_threads`] (a
//! thread-local override), not by mutating `NOC_PAR_THREADS`, so
//! concurrently running tests cannot race on process-global state.

use noc_multiusecase::benchgen::{BottleneckConfig, SpreadConfig};
use noc_multiusecase::map::anneal::{refine, AnnealConfig};
use noc_multiusecase::map::design::{design_smallest_mesh, FabricKind};
use noc_multiusecase::map::emit::emit_text;
use noc_multiusecase::map::remap::{refine_with_remap, RemapConfig};
use noc_multiusecase::map::report::SolutionReport;
use noc_multiusecase::map::strategy::{design_with_strategy, StrategyKind};
use noc_multiusecase::map::{MapperOptions, MappingSolution};
use noc_multiusecase::par::with_threads;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::spec::SocSpec;
use noc_multiusecase::usecase::UseCaseGroups;

const SEED: u64 = 2006;
const MAX_SWITCHES: usize = 400;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn design(soc: &SocSpec) -> MappingSolution {
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    design_smallest_mesh(
        soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        MAX_SWITCHES,
    )
    .expect("pinned-seed benchmarks are feasible")
}

/// The full pipeline artifact for one benchmark at one thread count:
/// solution + human report + emitted configuration, all byte-comparable.
fn pipeline(soc: &SocSpec) -> (MappingSolution, String, String) {
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let solution = design(soc);
    solution.verify(soc, &groups).expect("solution verifies");
    let report = format!("{}", SolutionReport::analyze(&solution));
    let artifact = emit_text(&solution, soc, &groups);
    (solution, report, artifact)
}

#[test]
fn golden_pipeline_is_identical_at_1_2_and_8_threads() {
    for soc in [
        SpreadConfig::paper(4).generate(SEED),
        BottleneckConfig::paper(4).generate(SEED),
    ] {
        let (base_sol, base_report, base_artifact) = with_threads(1, || pipeline(&soc));
        for threads in THREAD_COUNTS {
            let (sol, report, artifact) = with_threads(threads, || pipeline(&soc));
            assert_eq!(sol, base_sol, "solution differs at {threads} threads");
            assert_eq!(report, base_report, "report differs at {threads} threads");
            assert_eq!(
                artifact, base_artifact,
                "emitted artifact differs at {threads} threads"
            );
        }
    }
}

#[test]
fn multi_chain_annealing_is_identical_across_thread_counts() {
    let soc = SpreadConfig::paper(4).generate(SEED);
    let groups = UseCaseGroups::singletons(4);
    let opts = MapperOptions::default();
    let initial = design(&soc);
    let cfg = AnnealConfig {
        iterations: 40,
        chains: 4,
        seed: 9,
        ..Default::default()
    };
    let base = with_threads(1, || refine(&soc, &groups, &opts, &initial, &cfg).unwrap());
    assert!(base.comm_cost_bytes_hops() <= initial.comm_cost_bytes_hops());
    for threads in THREAD_COUNTS {
        let refined = with_threads(threads, || {
            refine(&soc, &groups, &opts, &initial, &cfg).unwrap()
        });
        assert_eq!(refined, base, "annealing differs at {threads} threads");
    }
}

#[test]
fn per_group_remapping_is_identical_across_thread_counts() {
    let soc = BottleneckConfig::paper(4).generate(SEED);
    let groups = UseCaseGroups::singletons(4);
    let opts = MapperOptions::default();
    let base_sol = design(&soc);
    let cfg = RemapConfig {
        max_moved_cores: 2,
        rounds: 1,
    };
    let base = with_threads(1, || {
        refine_with_remap(&soc, &groups, &opts, &base_sol, &cfg).unwrap()
    });
    for threads in THREAD_COUNTS {
        let remapped = with_threads(threads, || {
            refine_with_remap(&soc, &groups, &opts, &base_sol, &cfg).unwrap()
        });
        assert_eq!(remapped, base, "remapping differs at {threads} threads");
    }
}

/// The strategy portfolio (PR 8) extends the byte-identity contract:
/// every [`StrategyKind`] — greedy, displacement local search, bounded
/// branch-and-bound — must produce the same [`StrategyOutcome`] (solution
/// *and* work accounting: evictions, nodes expanded) at every worker
/// count. The refinement searches route candidates through the shared
/// route cache, so this also pins the cache as schedule-independent.
///
/// [`StrategyOutcome`]: noc_multiusecase::map::strategy::StrategyOutcome
#[test]
fn strategy_portfolio_is_identical_across_thread_counts() {
    let soc = SpreadConfig::paper(4).generate(SEED);
    let groups = UseCaseGroups::singletons(4);
    let opts = MapperOptions::default();
    for kind in StrategyKind::ALL {
        let run = || {
            design_with_strategy(
                &soc,
                &groups,
                TdmaSpec::paper_default(),
                &opts,
                MAX_SWITCHES,
                FabricKind::Mesh,
                kind,
            )
            .expect("pinned-seed benchmarks are feasible")
        };
        let base = with_threads(1, run);
        base.solution
            .verify(&soc, &groups)
            .expect("strategy output verifies");
        for threads in THREAD_COUNTS {
            let outcome = with_threads(threads, run);
            assert_eq!(
                outcome, base,
                "strategy {kind} differs at {threads} threads"
            );
        }
    }
}

/// The persistent-pool contract: once a region as wide as any this
/// binary uses has warmed the pool, running the full design pipeline
/// again — any number of times, at any width up to the warmed one —
/// spawns **zero** new OS threads. (Concurrent tests in this binary can
/// race the warm-up itself, but none uses a wider region, so after
/// warm-up the spawn count cannot move.)
#[test]
fn pool_is_reused_across_sequential_regions() {
    let soc = SpreadConfig::paper(4).generate(SEED);
    // Warm up at this binary's widest region width.
    let warm = with_threads(8, || pipeline(&soc));
    let spawned = noc_multiusecase::par::pool_threads_spawned();
    assert!(
        spawned >= 1,
        "an 8-wide pipeline must have enlisted the pool"
    );
    for threads in [2, 4, 8, 8] {
        let again = with_threads(threads, || pipeline(&soc));
        assert_eq!(again, warm, "pooled runs stay byte-identical");
    }
    assert_eq!(
        noc_multiusecase::par::pool_threads_spawned(),
        spawned,
        "sequential regions must re-use pooled workers, not spawn new ones"
    );
}

/// The speedup claim behind the parallel subsystem, kept honest: a
/// multi-group suite must not map *slower* with extra workers, and the
/// result must match the sequential one bit for bit. The parallel run
/// pins `min(4, available cores)` workers — pinning more threads than
/// cores turns speculative work into pure overhead, which is a
/// misconfiguration, not a property worth asserting. The actual measured
/// speedup is reported by `experiments -- runtime` (and recorded in
/// CHANGES.md); the bound here is loose so that slow or noisy CI
/// machines cannot flake it.
#[test]
fn parallel_mapping_does_not_lose_to_sequential() {
    let soc = SpreadConfig::paper(20).generate(SEED + 20);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(4);
    let time = |threads: usize| {
        with_threads(threads, || {
            let t0 = std::time::Instant::now();
            let sol = design(&soc);
            (t0.elapsed(), sol)
        })
    };
    // Warm-up so first-touch page faults don't bias the 1-thread run.
    let _ = time(1);
    let (sequential, seq_sol) = time(1);
    let (parallel, par_sol) = time(threads);
    assert_eq!(seq_sol, par_sol);
    // Loose bound: the parallel run may take at most 1.5x the sequential
    // wall-clock (on multi-core hardware it is well below 1x).
    assert!(
        parallel.as_secs_f64() <= sequential.as_secs_f64() * 1.5,
        "{threads}-thread run took {parallel:?} vs 1-thread {sequential:?}"
    );
}
