//! Differential tests for the mapping-strategy portfolio
//! (`nocmap::strategy`): every strategy's output is checked against a
//! **naive shadow model** that re-derives the TDMA contract from first
//! principles — a per-slot occupancy scan over plain `Vec<bool>` tables,
//! nothing shared with the bit-packed masks or the mapper's own
//! bookkeeping — plus the portfolio's quality and budget invariants:
//!
//! * every strategy's solution passes the shadow scan (no double-booked
//!   `(link, slot)` inside a group, slot indices in range, reservations
//!   sized for the merged bandwidth, stored worst-case latencies equal to
//!   the spec's formula) **and** the real [`verify`] contract;
//! * branch-and-bound never costs more than greedy (the incumbent starts
//!   at the greedy solution), and neither refinement strategy changes the
//!   fabric size;
//! * displacement respects its eviction budget, branch-and-bound its
//!   node budget;
//! * the route cache is an op-level optimization only:
//!   [`refine_cached`] returns **byte-identical** solutions to
//!   [`refine`] on every generated instance.
//!
//! [`verify`]: noc_multiusecase::map::MappingSolution::verify
//! [`refine`]: noc_multiusecase::map::anneal::refine
//! [`refine_cached`]: noc_multiusecase::map::anneal::refine_cached

use std::collections::BTreeMap;

use noc_multiusecase::map::anneal::{refine, refine_cached, AnnealConfig};
use noc_multiusecase::map::design::FabricKind;
use noc_multiusecase::map::strategy::{
    design_with_strategy, StrategyKind, StrategyOutcome, BNB_NODE_BUDGET,
};
use noc_multiusecase::map::{MapperOptions, MappingSolution};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::topology::LinkId;
use noc_multiusecase::usecase::spec::{CoreId, Flow, SocSpec, UseCase, UseCaseBuilder};
use noc_multiusecase::usecase::UseCaseGroups;
use proptest::prelude::*;

/// Strategy: a use-case over `cores` cores with 1..=max_flows random
/// flows (distinct pairs, bandwidths in MB/s) — the same generator shape
/// as `tests/proptests.rs`, kept latency-unconstrained so more random
/// instances stay feasible on small fabrics.
fn use_case_strategy(cores: u32, max_flows: usize) -> impl Strategy<Value = UseCase> {
    let pair = (0..cores, 0..cores).prop_filter("no self flows", |(a, b)| a != b);
    proptest::collection::btree_set(pair, 1..=max_flows).prop_flat_map(move |pairs| {
        let n = pairs.len();
        (Just(pairs), proptest::collection::vec(1u64..800, n)).prop_map(|(pairs, bws)| {
            let mut b = UseCaseBuilder::new("prop");
            for ((src, dst), bw) in pairs.into_iter().zip(bws) {
                b.add_flow(
                    Flow::new(
                        CoreId::new(src),
                        CoreId::new(dst),
                        Bandwidth::from_mbps(bw),
                        Latency::UNCONSTRAINED,
                    )
                    .expect("strategy yields valid flows"),
                )
                .expect("btree_set pairs are distinct");
            }
            b.build()
        })
    })
}

fn soc_from(ucs: Vec<UseCase>) -> SocSpec {
    let mut soc = SocSpec::new("prop");
    for uc in ucs {
        soc.add_use_case(uc);
    }
    soc
}

/// The naive shadow model: replays every group configuration into plain
/// per-link `Vec<bool>` slot tables (slot `base + i` on the `i`-th link
/// of the path, modulo the wheel) and fails on any double booking —
/// independently of `NetworkSlots`' word-packed masks. Also re-derives
/// the per-route contract: indices in range, reservation sized for the
/// route's bandwidth, stored worst-case latency equal to the spec
/// formula.
fn shadow_scan(sol: &MappingSolution) -> Result<(), String> {
    let spec = sol.spec();
    let slots = spec.slots();
    for (g, config) in sol.group_configs().iter().enumerate() {
        let mut tables: BTreeMap<LinkId, Vec<bool>> = BTreeMap::new();
        for (&(src, dst), route) in config.iter() {
            if route.path.is_empty() {
                return Err(format!("group {g} pair {src}->{dst}: empty path"));
            }
            if route.slot_count() < spec.slots_for_bandwidth(route.bandwidth) {
                return Err(format!(
                    "group {g} pair {src}->{dst}: {} slots cannot carry {}",
                    route.slot_count(),
                    route.bandwidth
                ));
            }
            if route.worst_case_latency != spec.worst_case_latency(&route.base_slots, route.hops())
            {
                return Err(format!(
                    "group {g} pair {src}->{dst}: stored worst-case latency diverges \
                     from the spec formula"
                ));
            }
            for &base in &route.base_slots {
                if base >= slots {
                    return Err(format!(
                        "group {g} pair {src}->{dst}: base slot {base} >= S = {slots}"
                    ));
                }
                for (i, &link) in route.path.iter().enumerate() {
                    let table = tables.entry(link).or_insert_with(|| vec![false; slots]);
                    let slot = (base + i) % slots;
                    if table[slot] {
                        return Err(format!(
                            "group {g} pair {src}->{dst}: slot {slot} on {link:?} \
                             double-booked"
                        ));
                    }
                    table[slot] = true;
                }
            }
        }
    }
    Ok(())
}

fn run_strategy(soc: &SocSpec, groups: &UseCaseGroups, kind: StrategyKind) -> StrategyOutcome {
    design_with_strategy(
        soc,
        groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        16,
        FabricKind::Mesh,
        kind,
    )
    .expect("feasible for greedy stays feasible for the portfolio")
}

proptest! {
    // Each case runs greedy + displacement + branch-and-bound; keep the
    // case count modest so the suite stays fast in debug CI runs.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy of the portfolio satisfies both the naive shadow
    /// model and the real verifier, on the same fabric, within its
    /// budgets — and branch-and-bound never loses to greedy.
    #[test]
    fn portfolio_outputs_are_valid_and_ordered(
        ucs in proptest::collection::vec(use_case_strategy(5, 6), 1..3),
    ) {
        let soc = soc_from(ucs);
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        // Skip instances the greedy baseline cannot map at all; the
        // refinement strategies only re-place on greedy's fabric.
        let greedy = match design_with_strategy(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            16,
            FabricKind::Mesh,
            StrategyKind::Greedy,
        ) {
            Ok(outcome) => outcome,
            Err(_) => return Ok(()),
        };
        let greedy_cost = greedy.solution.comm_cost_bytes_hops();
        for kind in StrategyKind::ALL {
            let outcome = run_strategy(&soc, &groups, kind);
            prop_assert!(
                shadow_scan(&outcome.solution).is_ok(),
                "{kind}: {}",
                shadow_scan(&outcome.solution).unwrap_err()
            );
            prop_assert!(outcome.solution.verify(&soc, &groups).is_ok(), "{kind} fails verify");
            prop_assert_eq!(
                outcome.solution.switch_count(),
                greedy.solution.switch_count(),
                "{} changed the fabric size", kind
            );
            prop_assert!(
                outcome.evictions <= outcome.eviction_budget || outcome.eviction_budget == 0,
                "{} blew its eviction budget ({} > {})",
                kind, outcome.evictions, outcome.eviction_budget
            );
            prop_assert!(
                outcome.nodes_expanded <= BNB_NODE_BUDGET,
                "{} blew the node budget ({})", kind, outcome.nodes_expanded
            );
            match kind {
                // The greedy outcome reports no refinement work at all.
                StrategyKind::Greedy => prop_assert_eq!(
                    (outcome.evictions, outcome.eviction_budget, outcome.nodes_expanded),
                    (0, 0, 0)
                ),
                // The incumbent starts at the greedy solution, so the
                // search result can never cost more.
                StrategyKind::BranchAndBound => prop_assert!(
                    outcome.solution.comm_cost_bytes_hops() <= greedy_cost,
                    "bnb ({}) lost to greedy ({greedy_cost})",
                    outcome.solution.comm_cost_bytes_hops()
                ),
                // Displacement keeps the better of greedy and its search.
                StrategyKind::Displacement => prop_assert!(
                    outcome.solution.comm_cost_bytes_hops() <= greedy_cost,
                    "displacement ({}) lost to greedy ({greedy_cost})",
                    outcome.solution.comm_cost_bytes_hops()
                ),
            }
        }
    }

    /// Strategies are pure functions of their inputs: re-running one on
    /// the same instance reproduces the outcome byte for byte.
    #[test]
    fn portfolio_is_deterministic(
        ucs in proptest::collection::vec(use_case_strategy(5, 5), 1..3),
    ) {
        let soc = soc_from(ucs);
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        if design_with_strategy(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            16,
            FabricKind::Mesh,
            StrategyKind::Greedy,
        )
        .is_err()
        {
            return Ok(());
        }
        for kind in StrategyKind::ALL {
            let a = run_strategy(&soc, &groups, kind);
            let b = run_strategy(&soc, &groups, kind);
            prop_assert_eq!(a, b, "{} is not deterministic", kind);
        }
    }

    /// The route cache never changes results: `refine_cached` is
    /// byte-identical to `refine` on every instance the mapper accepts
    /// (the cache only swaps re-routes for splices; the walk — RNG
    /// stream, accepts, winner — is untouched).
    #[test]
    fn cached_refinement_is_byte_identical(
        ucs in proptest::collection::vec(use_case_strategy(5, 5), 1..3),
        seed in 0u64..1000,
    ) {
        let soc = soc_from(ucs);
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let opts = MapperOptions::default();
        let initial = match design_with_strategy(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &opts,
            16,
            FabricKind::Mesh,
            StrategyKind::Greedy,
        ) {
            Ok(outcome) => outcome.solution,
            Err(_) => return Ok(()),
        };
        let cfg = AnnealConfig {
            iterations: 20,
            chains: 2,
            seed,
            ..Default::default()
        };
        let plain = refine(&soc, &groups, &opts, &initial, &cfg).expect("refine succeeds");
        let cached =
            refine_cached(&soc, &groups, &opts, &initial, &cfg).expect("refine_cached succeeds");
        prop_assert_eq!(plain, cached);
    }
}
