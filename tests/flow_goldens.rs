//! Byte-identity regression tests for the `noc-flow` redesign.
//!
//! The files under `tests/goldens/` were captured from the
//! **pre-redesign** `experiments` binary (free-function sweeps, commit
//! b2743ce) at seed 2006. Every registry-driven suite must render the
//! exact same bytes through the new pipeline API, at 1 and at 4
//! `noc-par` workers — the acceptance bar of the `noc-flow` PR and the
//! determinism contract in one test.
//!
//! The `runtime` entry is excluded: its cells are wall-clock durations.

use noc_multiusecase::flow::{registry, render, run_spec};
use noc_multiusecase::par::with_threads;

/// `(registry name, golden file)` for every deterministic suite.
/// `frontier`, `service` and `resilience` post-date the redesign:
/// their goldens were captured from the PR-8 strategy portfolio, the
/// PR-9 online admission service, and the PR-10 fault-injection study
/// (every cell deterministic, no wall-clock).
const GOLDENS: [(&str, &str); 15] = [
    ("fig6a", include_str!("goldens/fig6a.txt")),
    ("fig6b", include_str!("goldens/fig6b.txt")),
    ("fig6b+", include_str!("goldens/fig6bx.txt")),
    ("fig6c", include_str!("goldens/fig6c.txt")),
    ("fig6c+", include_str!("goldens/fig6cx.txt")),
    ("fig7a", include_str!("goldens/fig7a.txt")),
    ("fig7b", include_str!("goldens/fig7b.txt")),
    ("fig7c", include_str!("goldens/fig7c.txt")),
    ("verify", include_str!("goldens/verify.txt")),
    ("ablation", include_str!("goldens/ablation.txt")),
    ("be_burst", include_str!("goldens/be_burst.txt")),
    ("headline", include_str!("goldens/headline.txt")),
    ("frontier", include_str!("goldens/frontier.txt")),
    ("service", include_str!("goldens/service.txt")),
    ("resilience", include_str!("goldens/resilience.txt")),
];

/// What the `experiments` binary prints for one name: the rendering on
/// success, the historical `{name} failed: {e}` line on failure.
fn render_as_cli(name: &str) -> String {
    let spec = registry::find(name).expect("golden suites are registered");
    match run_spec(&spec) {
        Ok(output) => render::render(&output),
        Err(e) => format!("{name} failed: {e}\n"),
    }
}

#[test]
fn every_registry_suite_matches_the_pre_redesign_golden() {
    for (name, golden) in GOLDENS {
        let rendered = with_threads(1, || render_as_cli(name));
        assert_eq!(
            rendered, golden,
            "suite '{name}' diverged from its pre-redesign golden at 1 worker"
        );
    }
}

#[test]
fn every_registry_suite_is_identical_at_4_workers() {
    for (name, golden) in GOLDENS {
        let rendered = with_threads(4, || render_as_cli(name));
        assert_eq!(
            rendered, golden,
            "suite '{name}' diverged from its pre-redesign golden at 4 workers"
        );
    }
}

#[test]
fn checked_in_spec_file_matches_the_registry() {
    // The CI example (`nocmap_cli flow run specs/flow_be_burst.flow`)
    // must execute exactly the registered be_burst experiment: pin the
    // checked-in file to the registry entry so neither drifts.
    use noc_multiusecase::flow::config::{experiment_from_text, experiment_to_text};
    let text = include_str!("../specs/flow_be_burst.flow");
    let parsed = experiment_from_text(text).expect("checked-in spec parses");
    let registered = registry::find("be_burst").unwrap();
    assert_eq!(parsed, registered, "specs/flow_be_burst.flow drifted");
    assert_eq!(
        experiment_to_text(&registered),
        text,
        "round-trip text of the registry entry drifted from the file"
    );
}

#[test]
fn legacy_entry_points_delegate_to_the_registry() {
    // The thin façade in `noc-bench` must return the same points the
    // runner produces (spot-check one infallible suite end to end).
    let comps = noc_multiusecase::bench::fig6a();
    let rendered = render::render_comparisons(&registry::find("fig6a").unwrap().title, &comps);
    assert_eq!(rendered, GOLDENS[0].1);
}
