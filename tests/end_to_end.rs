//! End-to-end integration: benchmark generation → pre-processing →
//! unified mapping → analytical verification → cycle-level simulation,
//! across crate boundaries.

use noc_multiusecase::benchgen::{BottleneckConfig, SocDesign, SpreadConfig};
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::wc::design_worst_case;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::sim::{simulate_group, simulate_use_case, SimConfig};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::UseCaseGroups;

#[test]
fn d1_designs_verifies_and_simulates_clean() {
    let soc = SocDesign::D1.generate();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        400,
    )
    .expect("D1 is feasible");
    sol.verify(&soc, &groups)
        .expect("mapper output is self-consistent");

    // Simulate every use-case at its own rates on its configuration.
    for uc in 0..soc.use_case_count() {
        let report = simulate_use_case(&sol, &soc, &groups, uc, &SimConfig::default());
        assert_eq!(report.contention_violations, 0, "use-case {uc} contended");
        assert_eq!(
            report.latency_violations, 0,
            "use-case {uc} missed latency bound"
        );
        assert!(report.all_flows_delivered(), "use-case {uc} dropped words");
    }
    // And every group configuration at full provisioned load.
    for g in 0..groups.group_count() {
        let report = simulate_group(
            &sol,
            g,
            &SimConfig {
                cycles: 4096,
                ..Default::default()
            },
        );
        assert_eq!(report.contention_violations, 0, "group {g} contended");
        assert_eq!(
            report.latency_violations, 0,
            "group {g} missed latency bound"
        );
    }
}

#[test]
fn every_soc_design_is_feasible_and_small() {
    // The paper maps all four designs; ours lands on small meshes.
    for d in SocDesign::ALL {
        let soc = d.generate();
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let sol = design_smallest_mesh(
            &soc,
            &groups,
            TdmaSpec::paper_default(),
            &MapperOptions::default(),
            400,
        )
        .unwrap_or_else(|e| panic!("{} must map: {e}", d.label()));
        sol.verify(&soc, &groups).unwrap();
        assert!(
            sol.switch_count() <= 9,
            "{} should fit a small mesh, used {}",
            d.label(),
            sol.switch_count()
        );
    }
}

#[test]
fn ours_never_needs_more_switches_than_worst_case() {
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    for (label, soc) in [
        ("sp5", SpreadConfig::paper(5).generate(99)),
        ("bot5", BottleneckConfig::paper(5).generate(99)),
        ("d1", SocDesign::D1.generate()),
    ] {
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let ours = design_smallest_mesh(&soc, &groups, spec, &opts, 400)
            .unwrap_or_else(|e| panic!("{label}: ours must map: {e}"));
        if let Ok(wc) = design_worst_case(&soc, spec, &opts, 400) {
            assert!(
                ours.switch_count() <= wc.switch_count(),
                "{label}: ours {} > wc {}",
                ours.switch_count(),
                wc.switch_count()
            );
        }
    }
}

#[test]
fn worst_case_method_degrades_with_use_case_count() {
    // The paper's scalability claim, on the Sp family: WC mesh size is
    // non-decreasing in the number of use-cases while ours stays flat.
    let spec = TdmaSpec::paper_default();
    let opts = MapperOptions::default();
    let mut ours_sizes = Vec::new();
    let mut wc_sizes = Vec::new();
    for n in [2usize, 10, 20] {
        let soc = SpreadConfig::paper(n).generate(2006 + n as u64);
        let groups = UseCaseGroups::singletons(n);
        let ours = design_smallest_mesh(&soc, &groups, spec, &opts, 400).expect("ours maps");
        ours_sizes.push(ours.switch_count());
        wc_sizes.push(design_worst_case(&soc, spec, &opts, 400).map(|s| s.switch_count()));
    }
    assert!(
        ours_sizes.iter().all(|&s| s == ours_sizes[0]),
        "ours flat: {ours_sizes:?}"
    );
    let feasible: Vec<usize> = wc_sizes
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    assert!(
        feasible.windows(2).all(|w| w[0] <= w[1]),
        "WC should not shrink with more use-cases: {wc_sizes:?}"
    );
    assert!(
        feasible.last().copied().unwrap_or(usize::MAX) > ours_sizes[0],
        "at 20 use-cases WC must be strictly worse (or infeasible): {wc_sizes:?}"
    );
}

#[test]
fn shared_core_mapping_across_groups() {
    // All use-cases use one core placement; only paths/slots differ.
    let soc = SpreadConfig::paper(4).generate(7);
    let groups = UseCaseGroups::singletons(4);
    let sol = design_smallest_mesh(
        &soc,
        &groups,
        TdmaSpec::paper_default(),
        &MapperOptions::default(),
        400,
    )
    .expect("feasible");
    // Every flow's route starts/ends at the same NI in whatever group.
    for uc_id in soc.use_case_ids() {
        for flow in soc.use_case(uc_id).flows() {
            let route = sol
                .route_for(&groups, uc_id, flow.src(), flow.dst())
                .expect("route exists");
            let topo = sol.topology();
            let first = topo.link(route.path[0]).src();
            let last = topo.link(*route.path.last().unwrap()).dst();
            assert_eq!(Some(first), sol.ni_of(flow.src()));
            assert_eq!(Some(last), sol.ni_of(flow.dst()));
        }
    }
}
