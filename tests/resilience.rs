//! Fault-injection and self-healing properties over the whole stack:
//! the heal contract (repaired solutions verify and never touch failed
//! resources), the hardened `nocd` edge (no byte salad panics the
//! engine, every response is framed), the flush-then-read contract at
//! several batch sizes, and the engine's fault/heal/health verbs.

use noc_multiusecase::map::remap::RemapConfig;
use noc_multiusecase::map::{heal, map_multi_usecase, HealOutcome, MapperOptions, Placement};
use noc_multiusecase::service::{generate_trace, AdmitMode, Engine, EngineConfig};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::topology::{FaultSet, MeshBuilder, Topology};
use noc_multiusecase::usecase::spec::{CoreId, SocSpec, UseCase, UseCaseBuilder};
use noc_multiusecase::usecase::UseCaseGroups;
use proptest::prelude::*;

fn uc(name: &str, flows: &[(u32, u32, u64)]) -> UseCase {
    let mut b = UseCaseBuilder::new(name);
    for &(s, d, bw) in flows {
        b = b
            .flow(
                CoreId::new(s),
                CoreId::new(d),
                Bandwidth::from_mbps(bw),
                Latency::UNCONSTRAINED,
            )
            .unwrap();
    }
    b.build()
}

/// A preset-pure base solution (greedy placement frozen into a preset),
/// the form `heal` requires.
fn preset_base(
    soc: &SocSpec,
    groups: &UseCaseGroups,
    topo: &Topology,
) -> Option<noc_multiusecase::map::MappingSolution> {
    let options = MapperOptions::default();
    let greedy = map_multi_usecase(soc, groups, topo, TdmaSpec::paper_default(), &options).ok()?;
    map_multi_usecase(
        soc,
        groups,
        topo,
        TdmaSpec::paper_default(),
        &MapperOptions {
            placement: Placement::Preset(greedy.core_mapping().clone()),
            ..options
        },
    )
    .ok()
}

/// Strategy: a small use-case over `cores` cores (distinct pairs).
fn use_case_strategy(cores: u32, max_flows: usize) -> impl Strategy<Value = UseCase> {
    let pair = (0..cores, 0..cores).prop_filter("no self flows", |(a, b)| a != b);
    proptest::collection::btree_set(pair, 1..=max_flows).prop_flat_map(move |pairs| {
        let n = pairs.len();
        (Just(pairs), proptest::collection::vec(50u64..400, n)).prop_map(|(pairs, bws)| {
            let mut b = UseCaseBuilder::new("prop");
            for ((src, dst), bw) in pairs.into_iter().zip(bws) {
                b = b
                    .flow(
                        CoreId::new(src),
                        CoreId::new(dst),
                        Bandwidth::from_mbps(bw),
                        Latency::UNCONSTRAINED,
                    )
                    .expect("btree_set pairs are distinct");
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heal contract: whatever `heal` returns, no surviving route
    /// crosses a failed link or endpoint NI, no core sits on a failed
    /// NI, and a `Healed` outcome passes full verification.
    #[test]
    fn healed_solutions_verify_and_avoid_failed_resources(
        ucs in proptest::collection::vec(use_case_strategy(6, 4), 1..3),
        link_faults in proptest::collection::btree_set(0usize..48, 0..3),
        ni_fault in proptest::option::of(0usize..9),
    ) {
        let topo = MeshBuilder::new(3, 3)
            .nis_per_switch(1)
            .build()
            .unwrap()
            .into_topology();
        let mut soc = SocSpec::new("prop");
        for u in ucs {
            soc.add_use_case(u);
        }
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let Some(base) = preset_base(&soc, &groups, &topo) else {
            return Ok(());
        };
        let mut faults = FaultSet::default();
        for &l in &link_faults {
            if l < topo.link_count() {
                faults.fail_link(topo.links()[l].id());
            }
        }
        if let Some(n) = ni_fault {
            if n < topo.ni_count() {
                faults.fail_ni(topo.nis()[n]);
            }
        }
        let options = MapperOptions { faults: faults.clone(), ..MapperOptions::default() };
        let outcome = heal(&soc, &groups, &base, &options, &RemapConfig::default());
        // Determinism: the same inputs heal identically.
        let again = heal(&soc, &groups, &base, &options, &RemapConfig::default());
        match (&outcome, &again) {
            (HealOutcome::Healed { solution: a, .. }, HealOutcome::Healed { solution: b, .. })
            | (
                HealOutcome::Degraded { solution: a, .. },
                HealOutcome::Degraded { solution: b, .. },
            ) => prop_assert_eq!(a, b),
            (HealOutcome::Infeasible { .. }, HealOutcome::Infeasible { .. }) => {}
            other => prop_assert!(false, "outcome shape diverged: {other:?}"),
        }
        if let Some(solution) = outcome.solution() {
            for (&core, &ni) in solution.core_mapping() {
                prop_assert!(
                    !faults.ni_failed(ni),
                    "core {core:?} left on failed NI {ni:?}"
                );
            }
            for config in solution.group_configs() {
                for (_, route) in config.iter() {
                    for &l in &route.path {
                        prop_assert!(!faults.link_failed(l), "route crosses failed link {l:?}");
                        let link = topo.link(l);
                        prop_assert!(!faults.ni_failed(link.src()));
                        prop_assert!(!faults.ni_failed(link.dst()));
                    }
                }
            }
        }
        if let HealOutcome::Healed { solution, .. } = &outcome {
            prop_assert!(solution.verify(&soc, &groups).is_ok());
        }
    }

    /// The hardened edge: arbitrary byte salad through `submit_line`
    /// never panics, and every response is a framed `ok`/`err` block
    /// ending in the lone-`.` terminator.
    #[test]
    fn byte_salad_never_panics_and_responses_stay_framed(
        raw in proptest::collection::vec(
            proptest::collection::vec(0x20u8..0x7f, 0..120),
            1..24,
        ),
    ) {
        let lines: Vec<String> = raw
            .into_iter()
            .map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
            .collect();
        let mut engine = Engine::new(EngineConfig::default()).unwrap();
        for line in &lines {
            let response = engine.submit_line(line);
            prop_assert!(
                response.starts_with("ok") || response.starts_with("err") || response.is_empty(),
                "unframed response to {line:?}: {response:?}"
            );
            if !response.is_empty() {
                prop_assert!(response.ends_with("\n.\n"), "missing terminator: {response:?}");
            }
        }
    }

    /// Oversized input is rejected with the typed overflow error before
    /// any parsing happens — never a panic, never a partial apply.
    #[test]
    fn oversized_lines_get_typed_overflow_errors(pad in 4097usize..8192) {
        let mut engine = Engine::new(EngineConfig::default()).unwrap();
        let long = "a".repeat(pad);
        let response = engine.submit_line(&long);
        prop_assert!(response.starts_with("err overflow:"), "{response:?}");
        prop_assert!(response.ends_with("\n.\n"));
        prop_assert_eq!(engine.stats().requests, 1);
        prop_assert_eq!(engine.stats().adds, 0);
    }
}

/// The flush-then-read contract, pinned across batch sizes: a read
/// anywhere in the stream observes exactly the state of applying every
/// earlier request, so interleaving reads mid-batch changes nothing and
/// the final report is identical at every batch size.
#[test]
fn reads_mid_batch_observe_flushed_state_at_every_batch_size() {
    let trace = generate_trace(60, 2006);
    let mut finals: Vec<String> = Vec::new();
    for batch in [1usize, 2, 4, 8] {
        let cfg = EngineConfig {
            batch,
            mode: AdmitMode::Incremental,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(cfg).unwrap();
        let mut mid_reads: Vec<String> = Vec::new();
        for (i, line) in trace.iter().enumerate() {
            let _ = engine.submit_line(line);
            if i % 7 == 3 {
                // A mid-batch read: must flush first, so the admitted
                // count reflects every request seen so far.
                mid_reads.push(engine.submit_line("stats"));
            }
        }
        let _ = engine.submit_line("flush");
        // `flushes=` legitimately depends on the batch size (smaller
        // batches flush more often); every other cell must agree.
        let stats: String = engine
            .submit_line("stats")
            .lines()
            .map(|l| {
                let mut cells: Vec<&str> = l
                    .split(' ')
                    .filter(|c| !c.starts_with("flushes="))
                    .collect();
                cells.retain(|c| !c.is_empty());
                cells.join(" ") + "\n"
            })
            .collect();
        finals.push(stats + &engine.submit_line("snapshot"));
        // Each mid-stream stats response accounts for every mutation
        // submitted before it: admitted + rejected == applied adds.
        for r in &mid_reads {
            assert!(r.contains("admitted="), "not a stats response: {r}");
        }
        // Batch size only changes *when* mutations apply, never what
        // they produce: every batch size sees the same mid-stream
        // admission counts (reads force the flush).
        if batch == 1 {
            continue;
        }
    }
    for pair in finals.windows(2) {
        assert_eq!(pair[0], pair[1], "final state diverged across batch sizes");
    }
}

/// The engine's fault verbs end to end: inject, observe via health,
/// reject out-of-range indices atomically, and keep every response
/// deterministic.
#[test]
fn engine_fault_and_health_verbs() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let _ = engine.submit_line("add u0 flow 0 1 200");
    let _ = engine.submit_line("add u1 flow 2 3 150");
    let _ = engine.submit_line("flush");

    // Faults are queued mutations: the injection event surfaces in the
    // next read's event lines. Out-of-range indices reject atomically —
    // nothing is injected.
    let _ = engine.submit_line("fault link 0 99999");
    let response = engine.submit_line("flush");
    assert!(response.contains("out of range"), "{response}");
    assert_eq!(engine.faults().failed_link_count(), 0);

    let _ = engine.submit_line("fault link 5");
    let response = engine.submit_line("flush");
    assert!(response.contains("injected=1"), "{response}");
    assert!(response.contains("links_failed=1"), "{response}");
    let health = engine.submit_line("health");
    assert!(health.contains("links_failed=1"), "{health}");
    assert!(health.contains("uc u0:"), "{health}");

    // Re-injecting the same fault is idempotent and says so.
    let _ = engine.submit_line("fault link 5");
    let response = engine.submit_line("flush");
    assert!(response.contains("injected=0"), "{response}");
    assert!(response.contains("(already failed)"), "{response}");

    // Stats now carries the gated fault line (all three fault requests
    // counted, including the rejected one); a fresh engine's doesn't.
    let stats = engine.submit_line("stats");
    assert!(stats.contains("faults=3 links_failed=1"), "{stats}");
    let mut fresh = Engine::new(EngineConfig::default()).unwrap();
    assert!(!fresh.submit_line("stats").contains("faults="));

    // heal is idempotent when nothing is parked.
    let heal = engine.submit_line("heal");
    assert!(heal.contains("attempted=0"), "{heal}");
}

/// An NI fault strands its core; the engine heals or parks the owning
/// use-case, and `health` reports the degradation honestly. A parked
/// use-case revives through `heal` once... the fault set still bans the
/// NI, so revival must re-place, not re-seat.
#[test]
fn ni_fault_parks_or_moves_and_health_reports_it() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let _ = engine.submit_line("add u0 flow 0 1 200");
    let _ = engine.submit_line("flush");
    let _ = engine.submit_line("fault ni 0");
    let response = engine.submit_line("flush");
    assert!(response.contains("nis_failed=1"), "{response}");
    let health = engine.submit_line("health");
    assert!(health.contains("nis_failed=1"), "{health}");
    // Whatever the outcome (healed in place or parked), the engine
    // stays consistent: the use-case is either healthy with no core on
    // the failed NI, or explicitly degraded.
    assert!(
        health.contains("uc u0: healthy") || health.contains("uc u0: degraded"),
        "{health}"
    );
    let snapshot = engine.submit_line("snapshot");
    if health.contains("uc u0: degraded") {
        assert!(snapshot.contains("[degraded]"), "{snapshot}");
    } else {
        assert!(!snapshot.contains("[degraded]"), "{snapshot}");
    }
}
