#!/usr/bin/env python3
"""Validate BENCH_nocmap.json trajectory files (schema + determinism).

Usage:
    check_bench_json.py FILE [FILE2]

With one file: validates the schema (top-level keys, per-run and
per-suite fields, op-counter keys). With two files: additionally asserts
that the *deterministic* fields of the two files' latest run records are
identical — CI passes records produced at ``--threads 1`` and ``4``, so
any divergence is a determinism-contract violation. Wall-time fields
(``map_ms`` / ``anneal_ms`` / ``trace_ms``) are machine-dependent and
excluded. Frontier records (``"frontier"`` instead of ``"suites"``),
service records (``"service"``) and resilience records
(``"resilience"``) carry no wall-clock at all, so every field of their
rows is compared.

See docs/PERFORMANCE.md for the schema.
"""

import json
import sys

OP_KEYS_V1 = {
    "path_queries",
    "dijkstra_pops",
    "scratch_allocs",
    "group_routes",
    "full_maps",
    "groups_rerouted",
    "groups_reused",
    "anneal_moves",
    "anneal_accepts",
}
# PR 6 added the slot-conflict counter pair; records written earlier
# carry the V1 key set and stay valid.
OP_KEYS_V2 = OP_KEYS_V1 | {"conflict_word_tests", "legacy_slot_probes"}
# PR 7 added the trace-span counter (stays 0 with no collector — the
# pay-for-use proof) and the trace_ms wall column per suite.
OP_KEYS_V3 = OP_KEYS_V2 | {"trace_spans"}
# PR 8 added the route-cache hit/miss pair (strategy portfolio).
OP_KEYS_V4 = OP_KEYS_V3 | {"route_cache_hits", "route_cache_misses"}
# PR 9 added the online-admission counters (nocd service).
OP_KEYS_V5 = OP_KEYS_V4 | {
    "admissions",
    "rejections",
    "displacement_evictions",
    "batch_flushes",
}
# PR 10 added the fault-injection / self-healing counters.
OP_KEYS_V6 = OP_KEYS_V5 | {
    "faults_injected",
    "heals_attempted",
    "heal_reroutes",
    "heal_evictions",
}
OP_KEY_SETS = (OP_KEYS_V1, OP_KEYS_V2, OP_KEYS_V3, OP_KEYS_V4, OP_KEYS_V5, OP_KEYS_V6)
SUITE_KEYS = {"label", "switches", "map_ms", "anneal_ms", "map_ops", "anneal_ops"}
SUITE_KEYS_V2 = SUITE_KEYS | {"trace_ms"}
# PR 8 frontier records: one row per (benchmark, strategy), strategy-keyed
# quality and op columns. Every field is deterministic (no wall-clock).
FRONTIER_ROW_KEYS = {"bench", "strategy", "switches", "cost", "evictions", "nodes", "ops"}
STRATEGIES = {"greedy", "displacement", "bnb"}
# PR 9 service records: one row per (fabric, admission mode), admission
# outcome + reconfiguration ops. Every field is deterministic (the
# seeded trace replays byte-identically at any worker count).
SERVICE_ROW_KEYS = {
    "fabric",
    "mode",
    "admitted",
    "rejected",
    "displaced",
    "evictions",
    "flushes",
    "ops",
}
MODES = {"incremental", "resolve"}
# PR 10 resilience records: one row per fabric, fault-injection outcome
# + self-healing repair ops. Every field is deterministic (the fault
# schedule is a pure function of the config and seed).
RESILIENCE_ROW_KEYS = {
    "fabric",
    "faults",
    "admitted",
    "rejected",
    "links_failed",
    "nis_failed",
    "degraded",
    "healed",
    "ops",
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == 1, f"{path}: unexpected schema {doc.get('schema')}"
    runs = doc.get("trajectory")
    assert isinstance(runs, list) and runs, f"{path}: empty or missing trajectory"
    labels = [run.get("label") for run in runs]
    dupes = {lbl for lbl in labels if labels.count(lbl) > 1}
    assert not dupes, f"{path}: duplicate run labels {sorted(dupes)}"
    for run in runs:
        assert isinstance(run["threads"], int) and run["threads"] >= 1
        if "frontier" in run:
            assert set(run) == {"label", "threads", "frontier"}, (
                f"{path}: bad frontier run keys {set(run)}"
            )
            assert run["frontier"], f"{path}: run '{run['label']}' has no rows"
            for row in run["frontier"]:
                assert set(row) == FRONTIER_ROW_KEYS, f"{path}: bad row keys {set(row)}"
                assert row["strategy"] in STRATEGIES, f"{path}: bad strategy {row['strategy']}"
                assert set(row["ops"]) in OP_KEY_SETS, f"{path}: bad ops keys {set(row['ops'])}"
            continue
        if "resilience" in run:
            assert set(run) == {"label", "threads", "resilience"}, (
                f"{path}: bad resilience run keys {set(run)}"
            )
            assert run["resilience"], f"{path}: run '{run['label']}' has no rows"
            for row in run["resilience"]:
                assert set(row) == RESILIENCE_ROW_KEYS, f"{path}: bad row keys {set(row)}"
                assert set(row["ops"]) in OP_KEY_SETS, f"{path}: bad ops keys {set(row['ops'])}"
            continue
        if "service" in run:
            assert set(run) == {"label", "threads", "service"}, (
                f"{path}: bad service run keys {set(run)}"
            )
            assert run["service"], f"{path}: run '{run['label']}' has no rows"
            for row in run["service"]:
                assert set(row) == SERVICE_ROW_KEYS, f"{path}: bad row keys {set(row)}"
                assert row["mode"] in MODES, f"{path}: bad mode {row['mode']}"
                assert set(row["ops"]) in OP_KEY_SETS, f"{path}: bad ops keys {set(row['ops'])}"
            continue
        assert set(run) == {"label", "threads", "suites"}, f"{path}: bad run keys {set(run)}"
        assert run["suites"], f"{path}: run '{run['label']}' has no suites"
        for suite in run["suites"]:
            assert set(suite) in (SUITE_KEYS, SUITE_KEYS_V2), (
                f"{path}: bad suite keys {set(suite)}"
            )
            for ops_key in ("map_ops", "anneal_ops"):
                assert set(suite[ops_key]) in OP_KEY_SETS, (
                    f"{path}: bad {ops_key} keys {set(suite[ops_key])}"
                )
    return doc


def deterministic(run):
    if "frontier" in run:
        # Frontier rows carry no wall-clock: every field must match.
        return run["frontier"]
    if "service" in run:
        # Service rows carry no wall-clock either.
        return run["service"]
    if "resilience" in run:
        # Resilience rows carry no wall-clock either.
        return run["resilience"]
    return [
        {k: s[k] for k in ("label", "switches", "map_ops", "anneal_ops")}
        for s in run["suites"]
    ]


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    docs = [load(p) for p in argv[1:]]
    for path in argv[1:]:
        print(f"{path}: schema OK")
    if len(docs) == 2:
        a, b = (deterministic(d["trajectory"][-1]) for d in docs)
        if a != b:
            print("FAIL: deterministic fields differ between the two records")
            for sa, sb in zip(a, b):
                if sa != sb:
                    print(f"  suite {sa['label']}: {sa} != {sb}")
            return 1
        print(f"deterministic fields identical across {len(a)} suites")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
