#!/usr/bin/env python3
"""Validate Chrome trace-event JSON emitted by ``--trace FILE.json``.

Usage:
    check_trace_json.py FILE [FILE2]

With one file: asserts the document is a well-formed JSON array of
trace events in which, per ``tid`` timeline, every ``B`` (begin) event
is closed by a name-matched ``E`` (end) event in stack order, the
timestamps are non-decreasing, and every begin carries a unique span id
in ``args.span``. With two files: additionally asserts the two
documents are byte-identical — CI passes op-mode traces produced at
``--threads 1`` and ``4``, so any divergence is a determinism-contract
violation (wall-mode traces are machine-dependent and should not be
diffed).

See docs/OBSERVABILITY.md for the trace format and contract.
"""

import json
import sys


def check(path):
    with open(path) as f:
        events = json.load(f)
    assert isinstance(events, list) and events, f"{path}: empty or not a JSON array"
    stacks = {}  # tid -> [name, ...] of open spans
    last_ts = {}  # tid -> latest timestamp seen
    span_ids = set()
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        assert isinstance(ev, dict), f"{where}: not an object"
        for key in ("name", "ph", "pid", "tid", "ts"):
            assert key in ev, f"{where}: missing '{key}'"
        tid, ts, ph = ev["tid"], ev["ts"], ev["ph"]
        assert ph in ("B", "E"), f"{where}: unexpected phase '{ph}'"
        assert ts >= last_ts.get(tid, 0), (
            f"{where}: timestamp {ts} goes backwards on tid {tid}"
        )
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            span = ev.get("args", {}).get("span")
            assert isinstance(span, int), f"{where}: begin without integer args.span"
            assert span not in span_ids, f"{where}: duplicate span id {span}"
            span_ids.add(span)
            stack.append(ev["name"])
        else:
            assert stack, f"{where}: end '{ev['name']}' with no open span on tid {tid}"
            opened = stack.pop()
            assert opened == ev["name"], (
                f"{where}: end '{ev['name']}' closes span '{opened}' on tid {tid}"
            )
    for tid, stack in stacks.items():
        assert not stack, f"{path}: tid {tid} left spans open: {stack}"
    print(f"{path}: {len(span_ids)} spans balanced across {len(stacks)} timeline(s)")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    for path in argv[1:]:
        check(path)
    if len(argv) == 3:
        a, b = (open(p, "rb").read() for p in argv[1:])
        if a != b:
            print(f"FAIL: {argv[1]} and {argv[2]} differ")
            return 1
        print("traces byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
