//! Deep-dive analysis of a finished design: per-group utilization and
//! latency statistics, reconfiguration costs between use-case groups, the
//! emitted configuration artifact (the phase-4 hand-off to RTL), and a
//! best-effort traffic study on the leftover TDMA capacity.
//!
//! ```text
//! cargo run --release --example analyze
//! ```

use noc_multiusecase::benchgen::SocDesign;
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::emit::emit_text;
use noc_multiusecase::map::report::SolutionReport;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::sim::{simulate_mixed, BestEffortFlow, Connection, TrafficModel};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::Bandwidth;
use noc_multiusecase::usecase::UseCaseGroups;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocDesign::D1.generate();
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let spec = TdmaSpec::paper_default();
    let solution = design_smallest_mesh(&soc, &groups, spec, &MapperOptions::default(), 400)?;
    solution.verify(&soc, &groups)?;

    // Analytics: what the architect reads off the design.
    let report = SolutionReport::analyze(&solution);
    println!("{report}");
    println!(
        "worst use-case switch reprograms {} connections\n",
        report.max_reconfiguration()
    );

    // The phase-4 artifact (NI route tables + slot tables). Print a
    // digest; the full text is what an RTL generator would consume.
    let artifact = emit_text(&solution, &soc, &groups);
    println!(
        "emitted configuration artifact: {} lines, {} bytes",
        artifact.lines().count(),
        artifact.len()
    );
    for line in artifact.lines().take(12) {
        println!("| {line}");
    }
    println!("| ...\n");

    // Best-effort headroom study: replay group 0's GT configuration and
    // push an increasing BE stream between two mapped cores over the
    // same fabric.
    let g = 0usize;
    let gt: Vec<Connection> = solution
        .group_config(g)
        .iter()
        .map(|(&key, route)| Connection {
            key,
            path: route.path.clone(),
            base_slots: route.base_slots.clone(),
            inject_bandwidth: route.bandwidth,
            traffic: TrafficModel::Constant,
            latency_bound_cycles: Some(
                spec.worst_case_latency_cycles(&route.base_slots, route.hops()),
            ),
        })
        .collect();
    // Reuse the first configured route's path for the BE probe.
    let (&(src, dst), probe) = solution.group_config(g).iter().next().expect("non-empty");
    println!(
        "BE probe along {src} -> {dst} ({} hops) on top of group {g}:",
        probe.hops()
    );
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "BE MB/s", "delivered", "mean lat (cy)", "backlog"
    );
    for mbps in [50u64, 200, 400, 800] {
        let be = BestEffortFlow {
            key: (src, dst),
            path: probe.path.clone(),
            inject_bandwidth: Bandwidth::from_mbps(mbps),
            traffic: TrafficModel::Constant,
        };
        let mixed = simulate_mixed(&spec, &gt, &[be], 16_384);
        assert_eq!(mixed.guaranteed.contention_violations, 0);
        let stats = &mixed.best_effort[&(src, dst)];
        println!(
            "{:>10} {:>12} {:>14.1} {:>12}",
            mbps,
            stats.delivered_words,
            stats.mean_latency_cycles(),
            stats.backlog_words
        );
    }
    println!("\nGT traffic is unaffected by BE load (checked by the simulator).");
    Ok(())
}
