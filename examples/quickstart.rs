//! Quickstart: map the paper's own two-use-case example (Figure 2) onto
//! the smallest mesh that satisfies both, then verify and simulate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::sim::{simulate_use_case, SimConfig};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::{Bandwidth, Latency};
use noc_multiusecase::usecase::spec::{CoreId, SocSpec, UseCaseBuilder};
use noc_multiusecase::usecase::UseCaseGroups;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cores of the paper's Figure 2 fragment.
    let input = CoreId::new(0);
    let filter1 = CoreId::new(1);
    let filter2 = CoreId::new(2);
    let filter3 = CoreId::new(3);
    let mem1 = CoreId::new(4);
    let mem2 = CoreId::new(5);
    let output = CoreId::new(6);

    let mbps = Bandwidth::from_mbps;
    let any = Latency::UNCONSTRAINED;

    // Use-case 1 (Figure 2a).
    let uc1 = UseCaseBuilder::new("use-case-1")
        .flow(input, filter1, mbps(100), any)?
        .flow(filter1, mem1, mbps(50), any)?
        .flow(mem1, filter2, mbps(50), any)?
        .flow(filter2, mem2, mbps(200), any)?
        .flow(mem2, filter3, mbps(150), any)?
        .flow(filter3, output, mbps(100), any)?
        .flow(filter1, filter3, mbps(50), any)?
        .build();

    // Use-case 2 (Figure 2b): same pipeline, different rates and an extra
    // stream.
    let uc2 = UseCaseBuilder::new("use-case-2")
        .flow(input, filter1, mbps(100), any)?
        .flow(filter1, mem1, mbps(50), any)?
        .flow(mem1, filter2, mbps(50), any)?
        .flow(filter2, mem2, mbps(50), any)?
        .flow(mem2, filter3, mbps(200), any)?
        .flow(filter3, output, mbps(150), any)?
        .flow(filter1, filter3, mbps(50), any)?
        .flow(input, mem1, mbps(50), any)?
        .build();

    let mut soc = SocSpec::new("figure2");
    soc.add_use_case(uc1);
    soc.add_use_case(uc2);

    // No smooth-switching constraints: each use-case may have its own NoC
    // configuration (paths + TDMA slots), sharing one core placement.
    let groups = UseCaseGroups::singletons(soc.use_case_count());

    let spec = TdmaSpec::paper_default(); // 500 MHz, 32-bit links
    let options = MapperOptions::default();
    let solution = design_smallest_mesh(&soc, &groups, spec, &options, 64)?;

    println!(
        "mapped {} cores / {} flows onto a {} mesh ({} switches)",
        soc.core_count(),
        soc.total_flow_count(),
        solution.label(),
        solution.switch_count()
    );
    for core in soc.cores() {
        println!(
            "  {core} -> NI {}",
            solution.ni_of(core).expect("all cores mapped")
        );
    }
    for (g, config) in solution.group_configs().iter().enumerate() {
        println!("configuration for {}:", soc.use_cases()[g].name());
        for (&(s, d), route) in config.iter() {
            println!(
                "  {s} -> {d}: {} hops, {} slots, worst case {}",
                route.hops(),
                route.slot_count(),
                route.worst_case_latency
            );
        }
    }

    // Analytical verification (phase 4 of the methodology) ...
    solution.verify(&soc, &groups)?;
    // ... and cycle-level simulation of each use-case on its config.
    for uc in 0..soc.use_case_count() {
        let report = simulate_use_case(&solution, &soc, &groups, uc, &SimConfig::default());
        assert_eq!(report.contention_violations, 0);
        assert_eq!(report.latency_violations, 0);
        assert!(report.all_flows_delivered());
        println!(
            "simulated {}: {} flows clean over {} cycles",
            soc.use_cases()[uc].name(),
            report.flows.len(),
            report.cycles
        );
    }
    println!("verification and simulation passed");
    Ok(())
}
