//! Compound modes: use-cases running **in parallel** (watching one
//! program while recording another). Phase 1 of the methodology
//! synthesizes a compound use-case per parallel set (bandwidths add,
//! latency bounds tighten); the compound is automatically tied to its
//! constituents in the switching graph so entering/leaving the parallel
//! mode is smooth. This example also sweeps the frequency cost of
//! parallelism (the paper's Figure 7(c) study).
//!
//! ```text
//! cargo run --release --example parallel_modes
//! ```

use noc_multiusecase::benchgen::SpreadConfig;
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::dvs::parallel_min_frequency;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::Frequency;
use noc_multiusecase::usecase::{expand_parallel_sets, ParallelSet, SwitchingGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-use-case spread SoC whose use-cases share a pool of physical
    // connections (so parallel modes genuinely contend for links).
    let mut cfg = SpreadConfig::paper(6);
    cfg.pair_pool = Some(120);
    cfg.versatile_fraction = 0.3;
    let mut soc = cfg.generate(42);
    let base_count = soc.use_case_count();

    // The user declares which use-cases can run in parallel (PUC input):
    // display (U0) with record (U1), and a triple-mode U2+U3+U4.
    let u = noc_multiusecase::usecase::spec::UseCaseId::new;
    let sets = vec![
        ParallelSet::new("display+record", [u(0), u(1)]),
        ParallelSet::new("triple", [u(2), u(3), u(4)]),
    ];
    let compounds = expand_parallel_sets(&mut soc, &sets)?;
    println!(
        "expanded {} parallel sets: {} use-cases total (was {base_count})",
        compounds.len(),
        soc.use_case_count()
    );
    for (id, members) in &compounds {
        let uc = soc.use_case(*id);
        println!(
            "  {} = {:?}: {} flows, {} aggregate",
            uc.name(),
            members.iter().map(|m| m.index()).collect::<Vec<_>>(),
            uc.flow_count(),
            uc.total_bandwidth()
        );
    }

    // Phase 2: compounds require smooth switching with their members.
    let mut sg = SwitchingGraph::new(soc.use_case_count());
    for (id, members) in &compounds {
        sg.add_compound(*id, members);
    }
    let groups = sg.group();
    println!(
        "switching graph: {} vertices, {} edges -> {} configuration groups",
        sg.vertex_count(),
        sg.edge_count(),
        groups.group_count()
    );

    // Phase 3: unified mapping + configuration.
    let spec = TdmaSpec::paper_default();
    let options = MapperOptions::default();
    let solution = design_smallest_mesh(&soc, &groups, spec, &options, 400)?;
    solution.verify(&soc, &groups)?;
    println!(
        "mapped onto a {} mesh; {} connections across {} group configs",
        solution.label(),
        solution.connection_count(),
        solution.group_configs().len()
    );

    // The Figure 7(c) trade-off: minimum NoC frequency vs parallelism.
    println!("frequency cost of parallelism (on the designed mesh):");
    for k in 1..=4usize.min(base_count) {
        match parallel_min_frequency(
            &soc,
            k,
            solution.topology(),
            spec,
            &options,
            Frequency::from_mhz(10),
            Frequency::from_ghz(4),
        ) {
            Ok((f, _)) => println!("  {k} use-case(s) in parallel: {f}"),
            Err(e) => println!("  {k} use-case(s) in parallel: infeasible ({e})"),
        }
    }
    Ok(())
}
