//! Measures `noc-par`'s per-region overhead: many *small* parallel
//! regions in sequence, the workload the persistent pool exists for.
//!
//! ```text
//! cargo run --release --example pool_overhead
//! ```
//!
//! Before the pool (PR 2 .. PR 4), every region spawned and joined its
//! own scoped threads: ~160 µs/region at width 4 on this container.
//! With the persistent pool a region costs a queue push and a condvar
//! notify: ~7 µs/region, a ~20x reduction — which is what makes
//! fine-grained regions (not just whole annealing chains or suite
//! points) worth parallelising. Results are identical either way; see
//! `docs/PERFORMANCE.md` for the pool lifecycle.

fn main() {
    noc_par::with_threads(4, || {
        // Warm the pool so thread spawning is not part of the measurement.
        for _ in 0..100 {
            let _ = noc_par::par_map(vec![1u64; 8], |_, x| x + 1);
        }
        let spawned = noc_par::pool_threads_spawned();
        let t0 = std::time::Instant::now();
        let regions = 20_000u32;
        for _ in 0..regions {
            let v = noc_par::par_map(vec![1u64; 8], |_, x| x * 2);
            assert_eq!(v.iter().sum::<u64>(), 16);
        }
        let dt = t0.elapsed();
        println!("{regions} regions in {dt:?} ({:?}/region)", dt / regions);
        assert_eq!(
            noc_par::pool_threads_spawned(),
            spawned,
            "the measured regions must not have spawned any thread"
        );
    });
}
