//! Set-top box walkthrough: design the D1/D2 SoCs with the multi-use-case
//! flow, compare against the worst-case baseline, and quantify the
//! DVS/DFS power saving — the paper's Sections 6.2 and 6.4 on one design.
//!
//! ```text
//! cargo run --release --example set_top_box
//! ```

use noc_multiusecase::benchgen::SocDesign;
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::dvs::dvs_savings;
use noc_multiusecase::map::wc::{design_worst_case, worst_case_use_case};
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::topology::units::Frequency;
use noc_multiusecase::topology::{AreaModel, DvsModel};
use noc_multiusecase::usecase::UseCaseGroups;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TdmaSpec::paper_default();
    let options = MapperOptions::default();
    let area_model = AreaModel::cmos130();

    for design in [SocDesign::D1, SocDesign::D2] {
        let cfg = design.config();
        let soc = design.generate();
        println!("== {} — {} ==", cfg.label, cfg.description);
        println!(
            "   {} cores, {} use-cases, {} flows total",
            soc.core_count(),
            soc.use_case_count(),
            soc.total_flow_count()
        );

        // The worst-case spec every flow must fit simultaneously (the
        // ASPDAC'06 baseline's input).
        let wc = worst_case_use_case(&soc);
        println!(
            "   worst-case union: {} connections, {} aggregate",
            wc.flow_count(),
            wc.total_bandwidth()
        );

        // Ours: per-use-case resource states.
        let groups = UseCaseGroups::singletons(soc.use_case_count());
        let ours = design_smallest_mesh(&soc, &groups, spec, &options, 400)?;
        ours.verify(&soc, &groups)?;
        println!(
            "   multi-use-case method: {} mesh, {:.2} mm² of switches",
            ours.label(),
            ours.area_mm2(&area_model)
        );

        // Baseline: one over-specified worst-case use-case.
        match design_worst_case(&soc, spec, &options, 400) {
            Ok(base) => println!(
                "   worst-case method:     {} mesh, {:.2} mm² of switches ({}x more switches)",
                base.label(),
                base.area_mm2(&area_model),
                base.switch_count() / ours.switch_count()
            ),
            Err(e) => println!("   worst-case method:     infeasible ({e})"),
        }

        // DVS/DFS: scale frequency/voltage per use-case during switching.
        let report = dvs_savings(
            &soc,
            &groups,
            &ours,
            &options,
            &DvsModel::cmos130(),
            Frequency::from_mhz(10),
        )?;
        println!(
            "   DVS/DFS: design clock {}, per-use-case minima {:?} MHz",
            report.design_frequency,
            report
                .per_use_case
                .iter()
                .map(|(_, f)| f.as_mhz_f64().round() as u64)
                .collect::<Vec<_>>()
        );
        println!(
            "   DVS/DFS power saving: {:.1}%",
            100.0 * report.savings_fraction()
        );
        println!();
    }
    Ok(())
}
