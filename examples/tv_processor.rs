//! TV-processor walkthrough with **smooth switching**: some use-cases of
//! the D3 design must share a NoC configuration (a critical mode must
//! engage without disturbing the running one). This example builds the
//! switching graph, runs Algorithm 1 grouping, and shows the cost of
//! constraining reconfiguration — Sections 4 and 5 of the paper.
//!
//! ```text
//! cargo run --release --example tv_processor
//! ```

use noc_multiusecase::benchgen::SocDesign;
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::spec::UseCaseId;
use noc_multiusecase::usecase::{SwitchingGraph, UseCaseGroups};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = SocDesign::D3.generate();
    let n = soc.use_case_count();
    println!("D3 TV processor: {} cores, {n} use-cases", soc.core_count());

    let spec = TdmaSpec::paper_default();
    let options = MapperOptions::default();
    let u = UseCaseId::new;

    // Three scenarios, increasingly constrained.
    // 1. Free reconfiguration between all use-cases.
    let free = UseCaseGroups::singletons(n);

    // 2. The paper's situation: a couple of critical transitions must be
    //    smooth. Say switching between "main picture" (U0) and
    //    "picture-in-picture" (U1) must not glitch the screen, and the
    //    emergency-broadcast mode (U7) must engage instantly from U6.
    let mut sg = SwitchingGraph::new(n);
    sg.add_smooth_pair(u(0), u(1));
    sg.add_smooth_pair(u(6), u(7));
    let grouped = sg.group();

    // 3. No reconfiguration at all (every use-case shares one config —
    //    the worst-case method's operating model).
    let frozen = UseCaseGroups::single_group(n);

    for (name, groups) in [
        ("free reconfiguration", &free),
        ("smooth {U0,U1} and {U6,U7}", &grouped),
        ("single shared configuration", &frozen),
    ] {
        match design_smallest_mesh(&soc, groups, spec, &options, 400) {
            Ok(sol) => {
                sol.verify(&soc, groups)?;
                println!(
                    "{name:>32}: {} groups -> {} mesh, {} connections configured",
                    groups.group_count(),
                    sol.label(),
                    sol.connection_count()
                );
            }
            Err(e) => println!("{name:>32}: infeasible ({e})"),
        }
    }

    // Smooth-switching property: use-cases in one group share routes
    // (identical paths and slots), so the transition needs no NoC
    // reprogramming.
    let sol = design_smallest_mesh(&soc, &grouped, spec, &options, 400)?;
    let g01 = grouped.group_of(u(0));
    assert_eq!(g01, grouped.group_of(u(1)), "U0 and U1 share a group");
    let config = sol.group_config(g01);
    println!(
        "group of U0/U1 holds {} shared connections; switching U0 <-> U1 is reconfiguration-free",
        config.len()
    );
    Ok(())
}
