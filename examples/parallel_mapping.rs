//! The `noc-par` subsystem in action: mapping a multi-group suite,
//! refining it with a portfolio of annealing chains, and proving the
//! determinism contract — the same bytes out at every thread count.
//!
//! ```text
//! cargo run --release --example parallel_mapping
//! NOC_PAR_THREADS=4 cargo run --release --example parallel_mapping
//! ```

use noc_multiusecase::benchgen::SpreadConfig;
use noc_multiusecase::map::anneal::{refine, AnnealConfig};
use noc_multiusecase::map::design::design_smallest_mesh;
use noc_multiusecase::map::MapperOptions;
use noc_multiusecase::par::{current_threads, with_threads};
use noc_multiusecase::tdma::TdmaSpec;
use noc_multiusecase::usecase::UseCaseGroups;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-use-case spread suite: ten independent groups for the mapper
    // and the simulated-annealing portfolio to chew on in parallel.
    let soc = SpreadConfig::paper(10).generate(2006);
    let groups = UseCaseGroups::singletons(soc.use_case_count());
    let opts = MapperOptions::default();
    let spec = TdmaSpec::paper_default();

    println!("ambient noc-par workers: {}", current_threads());

    let time = |threads: usize| {
        with_threads(threads, || {
            let t0 = std::time::Instant::now();
            let sol = design_smallest_mesh(&soc, &groups, spec, &opts, 400)?;
            Ok::<_, noc_multiusecase::map::MapError>((t0.elapsed(), sol))
        })
    };
    let (t_seq, seq) = time(1)?;
    let (t_par, par) = time(current_threads())?;
    assert_eq!(seq, par, "determinism contract: same bytes at any width");
    println!(
        "mapped {} use-cases onto a {} mesh: {t_seq:.2?} at 1 worker, {t_par:.2?} at {}",
        soc.use_case_count(),
        seq.label(),
        current_threads(),
    );

    // A 4-chain annealing portfolio: chains walk independently from
    // deterministically-derived seeds; the winner is picked by
    // (cost, chain index), so this too is thread-count-invariant.
    let cfg = AnnealConfig {
        iterations: 120,
        chains: 4,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let refined = refine(&soc, &groups, &opts, &seq, &cfg)?;
    println!(
        "4-chain annealing: comm cost {:.0} -> {:.0} MB/s·hops in {:.2?}",
        seq.comm_cost(),
        refined.comm_cost(),
        t0.elapsed(),
    );
    refined.verify(&soc, &groups)?;
    Ok(())
}
