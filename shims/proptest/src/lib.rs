//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`, integer-range and tuple
//! strategies, [`collection`] (`vec`/`btree_set`/`btree_map`) and
//! [`option::of`] strategies, plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its inputs via the
//!   panic message of the assertion that fired.
//! - **Deterministic.** The RNG seed is derived from the test
//!   function's name, so failures reproduce exactly across runs. The
//!   failure message prints that seed ([`TestRng::seed_for_test`]);
//!   feed it to [`TestRng::from_seed`] to replay a failing stream in
//!   isolation.
//! - Default case count is 64 (the real crate's 256), keeping the
//!   suite fast; override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// How many times a filtered or deduplicating strategy retries before
/// giving up on a case.
const MAX_REJECTS: usize = 1000;

/// Deterministic RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds a generator whose seed is a hash of `name`
    /// ([`TestRng::seed_for_test`]), so each test gets a distinct but
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        Self::from_seed(Self::seed_for_test(name))
    }

    /// The deterministic seed `for_test(name)` uses — FNV-1a over the
    /// test name. Failure messages print this value so a failing
    /// stream can be replayed via [`TestRng::from_seed`] without
    /// re-deriving the hash.
    pub fn seed_for_test(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Builds a generator from an explicit seed (e.g. one printed by a
    /// failing run).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws
    /// from the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which `f` returns `false`, retrying.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_REJECTS} samples",
            self.whence
        )
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Size specifications accepted by collection strategies: a fixed
    /// `usize`, `lo..hi`, or `lo..=hi`.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `BTreeSet` of `size` distinct elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.size_bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.min..=self.max);
            let mut out = BTreeSet::new();
            for _ in 0..MAX_REJECTS {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            assert!(
                out.len() >= self.min,
                "btree_set: could not reach min size {} (got {})",
                self.min,
                out.len()
            );
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        min: usize,
        max: usize,
    }

    /// `BTreeMap` of `size` entries with distinct keys.
    pub fn btree_map<K, V>(key: K, value: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        let (min, max) = size.size_bounds();
        BTreeMapStrategy {
            key,
            value,
            min,
            max,
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.gen_range(self.min..=self.max);
            let mut out = BTreeMap::new();
            for _ in 0..MAX_REJECTS {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            assert!(
                out.len() >= self.min,
                "btree_map: could not reach min size {} (got {})",
                self.min,
                out.len()
            );
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Yields `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let seed = $crate::TestRng::seed_for_test(test_path);
            let mut rng = $crate::TestRng::from_seed(seed);
            for case in 0..config.cases {
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body;
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "{} failed at case {case}/{} (seed {seed:#018x}, replay with \
                         TestRng::from_seed): {e}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property test, failing the case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..5, 0u32..5).prop_filter("ne", |(a, b)| a != b), 1..6),
            o in crate::option::of(1u64..3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert_ne!(a, b);
            }
            if let Some(x) = o {
                prop_assert!(x >= 1 && x < 3);
            }
        }

        #[test]
        fn flat_map_and_sets(
            s in crate::collection::btree_set(0u32..20, 2..5)
        ) {
            prop_assert!(s.len() >= 2 && s.len() < 5);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failure_message_carries_replay_seed() {
        proptest! {
            fn doomed(x in 0u32..2) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(doomed).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic carries String");
        let expected = crate::TestRng::seed_for_test(concat!(module_path!(), "::doomed"));
        assert!(
            msg.contains(&format!("seed {expected:#018x}")),
            "failure message must print the deterministic seed: {msg}"
        );
        assert!(msg.contains("x was"), "{msg}");
    }

    #[test]
    fn early_return_ok_is_supported() {
        proptest! {
            fn inner(x in 0u32..2) {
                if x == 0 {
                    return Ok(());
                }
                prop_assert_eq!(x, 1);
            }
        }
        inner();
    }
}
