//! Offline shim for `serde_derive`: the derives parse just enough of
//! the item to find its name and emit an empty marker-trait impl.
//! Helper `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Finds the `struct`/`enum`/`union` name in `input` and emits
/// `impl ::serde::<Trait> for <Name> {}`. Generic items are not
/// supported (nothing in this workspace derives serde on generics).
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                for tt in tokens.by_ref() {
                    if let TokenTree::Ident(id) = tt {
                        name = Some(id.to_string());
                        break;
                    }
                }
                break;
            }
        }
    }
    let name = name.expect("serde shim derive: could not find item name");
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl parses")
}
