//! Offline shim for `rand` 0.8.
//!
//! Provides the subset of the rand API this workspace uses —
//! [`rngs::SmallRng`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`seq::SliceRandom`], and
//! [`distributions::WeightedIndex`] — backed by a deterministic
//! xoshiro256++ generator seeded via splitmix64, matching the real
//! crate's `SmallRng` construction on 64-bit targets. Statistical
//! quality is adequate for benchmark synthesis; cryptographic use is
//! out of scope.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only [`SeedableRng::seed_from_u64`] is used by
/// this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // 53-bit resolution over the closed interval; hitting `hi`
        // exactly has probability ~2^-53, same as the open variant.
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniform element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution sampling.
pub mod distributions {
    use super::Rng;

    /// Types that sample values of `T` from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative, NaN, or infinite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no items to sample from"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a list of `f64` weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
    }

    impl WeightedIndex {
        /// Builds the sampler from an iterator of weights.
        ///
        /// # Errors
        ///
        /// [`WeightedError`] if the list is empty, any weight is
        /// negative or non-finite, or all weights are zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty by construction");
            let x = rng.gen_range(0.0..total);
            self.cumulative
                .iter()
                .position(|&c| x < c)
                .unwrap_or(self.cumulative.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_runs() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(9);
        let dist = WeightedIndex::new([1.0f64, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 4, "{counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64]).is_err());
        assert!(WeightedIndex::new([f64::NAN]).is_err());
    }
}
