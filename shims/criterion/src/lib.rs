//! Offline shim for `criterion`.
//!
//! Supports the API surface the workspace's bench targets use:
//! [`Criterion`], benchmark groups with `sample_size`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and
//! [`black_box`]. Instead of statistical sampling, each benchmark
//! body runs `sample_size` iterations (capped at 10) and prints the
//! per-iteration mean — enough to compare orders of magnitude and to
//! keep `cargo bench` runnable offline.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used by this group (capped at 10 in
    /// the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.min(10);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: fmt::Display,
        D: ?Sized,
        F: FnMut(&mut Bencher, &D),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` times its argument.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    nanos: u128,
}

impl Bencher {
    /// Runs `f` the configured number of times, recording wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F>(label: &str, iters: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let iters = iters.max(1);
    let mut b = Bencher { iters, nanos: 0 };
    f(&mut b);
    let mean_ns = b.nanos / iters as u128;
    let (value, unit) = if mean_ns >= 1_000_000_000 {
        (mean_ns as f64 / 1e9, "s")
    } else if mean_ns >= 1_000_000 {
        (mean_ns as f64 / 1e6, "ms")
    } else if mean_ns >= 1_000 {
        (mean_ns as f64 / 1e3, "µs")
    } else {
        (mean_ns as f64, "ns")
    };
    println!("bench {label:<50} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_ids_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(runs, 3);
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
        assert_eq!(BenchmarkId::new("f", 5).to_string(), "f/5");
    }
}
