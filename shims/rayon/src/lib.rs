//! Offline shim for `rayon`'s core fork-join API, backed by
//! [`noc_par`].
//!
//! Only the subset this workspace could plausibly migrate to is exposed:
//! [`join`], [`scope`]/[`Scope::spawn`](noc_par::Scope::spawn), and
//! [`current_num_threads`]. Parallel iterators are intentionally absent —
//! ordered indexed mapping is [`noc_par::par_map`], which (unlike an ad
//! hoc `par_iter().map().collect()`) documents and tests the
//! deterministic, input-order reduction this workspace's golden tests
//! rely on.
//!
//! The signatures differ from the real rayon in one deliberate way:
//! closures need not be `'static`-free-of-borrows tricks — scoped
//! regions already accept borrowing closures, and [`join`] runs its
//! first closure on the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noc_par::{join, scope, Scope};

/// The number of worker threads a parallel region entered from this
/// thread would use (rayon calls this the current pool size).
pub fn current_num_threads() -> usize {
    noc_par::current_threads()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_round_trips() {
        let (a, b) = super::join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
        assert!(super::current_num_threads() >= 1);
        let mut hits = 0;
        super::scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
