//! Offline shim for `serde`.
//!
//! The container building this workspace has no crates.io access, so
//! this crate provides the minimal surface the workspace uses: the
//! `Serialize`/`Deserialize` marker traits and their derive macros
//! (which emit empty impls). No code in the workspace performs actual
//! serialization yet; when a real format backend (e.g. `serde_json`)
//! is introduced, replace the `shims/serde` path dependency in the
//! root `Cargo.toml` with the real crates.io `serde`.

/// Marker for types that can be serialized.
///
/// The real trait's methods are unused in this workspace; the derive
/// records intent (and validates `#[serde(...)]` attribute placement)
/// without generating code.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
